//! The rule engine: project-specific determinism and soundness rules
//! evaluated over the token stream of one source file.
//!
//! Every rule is lexical by design — the analyzer runs offline with no
//! `syn`, so rules match identifier/punctuation patterns that the
//! workspace's own conventions make unambiguous (see
//! `docs/LINTING.md` for the catalog and the known approximations).
//!
//! ## Scoped escape hatch
//!
//! A finding can be waived in place with
//!
//! ```text
//! // lint:allow(rule-name): reason the rule does not apply here
//! ```
//!
//! The allow suppresses findings of that rule on the comment's own
//! line and on the line immediately below (so both trailing and
//! line-above placement work). The reason is mandatory: an allow with
//! no reason (or an unknown rule name) is itself reported under
//! `allow-syntax` and suppresses nothing.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: nondeterminism sources in digest/export-reachable crates.
    D1Nondeterminism,
    /// D2: ad-hoc float formatting in JSON-building export strings.
    D2FloatFormat,
    /// S1: `#![forbid(unsafe_code)]` on crate roots; no `unsafe` tokens.
    S1Unsafe,
    /// S2: no `unwrap`/`expect`/`panic!`/`todo!` in library crates.
    S2Panic,
    /// S3: public items in `core`/`protocols` carry doc comments.
    S3Doc,
    /// S4: filesystem access confined to `store/src/io.rs` and the
    /// CLI/tooling layer.
    S4Io,
    /// D4: no digest/export sink may transitively reach a
    /// nondeterminism source through the call graph.
    D4DigestTaint,
    /// C1: concurrency hygiene — no `static mut`, primitives confined
    /// to the designated pool modules, merge paths taint-clean.
    C1PoolDiscipline,
    /// U1: pub items referenced nowhere in the workspace.
    U1DeadPub,
    /// Meta-rule: malformed `lint:allow` escapes.
    AllowSyntax,
    /// Meta-rule: `lint:allow` escapes whose rule no longer fires at
    /// that site.
    AllowStale,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 11] = [
        RuleId::D1Nondeterminism,
        RuleId::D2FloatFormat,
        RuleId::S1Unsafe,
        RuleId::S2Panic,
        RuleId::S3Doc,
        RuleId::S4Io,
        RuleId::D4DigestTaint,
        RuleId::C1PoolDiscipline,
        RuleId::U1DeadPub,
        RuleId::AllowSyntax,
        RuleId::AllowStale,
    ];

    /// The stable kebab-case name used in diagnostics and allows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1Nondeterminism => "d1-nondeterminism",
            RuleId::D2FloatFormat => "d2-float-format",
            RuleId::S1Unsafe => "s1-unsafe",
            RuleId::S2Panic => "s2-panic",
            RuleId::S3Doc => "s3-doc",
            RuleId::S4Io => "s4-io",
            RuleId::D4DigestTaint => "d4-digest-taint",
            RuleId::C1PoolDiscipline => "c1-pool-discipline",
            RuleId::U1DeadPub => "u1-dead-pub",
            RuleId::AllowSyntax => "allow-syntax",
            RuleId::AllowStale => "allow-stale",
        }
    }

    /// Parses a rule name as written inside `lint:allow(…)`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules` and the report header.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1Nondeterminism => {
                "no nondeterminism sources (Instant::now, SystemTime, thread_rng, \
                 HashMap/HashSet, thread::current) in digest/export-reachable crates"
            }
            RuleId::D2FloatFormat => {
                "float precision formatting inside JSON-building strings must go \
                 through tagwatch_obs::json_f64"
            }
            RuleId::S1Unsafe => {
                "crate roots carry #![forbid(unsafe_code)]; no `unsafe` token anywhere"
            }
            RuleId::S2Panic => {
                "no unwrap()/expect()/panic!/todo! in library crates outside #[cfg(test)]"
            }
            RuleId::S3Doc => "public items in core/protocols carry doc comments",
            RuleId::S4Io => {
                "no std::fs / disk I/O in library crates: persistence goes through \
                 tagwatch_store::io (the workspace's only filesystem touchpoint) or \
                 the CLI layer"
            }
            RuleId::D4DigestTaint => {
                "no function reachable from a digest/export sink (FNV digesting, JSON \
                 report writers, WAL encoders, checkpoint serializers, Prometheus/span \
                 exporters) may transitively reach a nondeterminism source"
            }
            RuleId::C1PoolDiscipline => {
                "concurrency hygiene: no `static mut`; Mutex/atomics/mpsc/spawn confined \
                 to analytics::pool and analytics::parallel; merge paths reachable from \
                 PooledEngine taint-clean"
            }
            RuleId::U1DeadPub => {
                "pub items referenced from no bin, test, or facade path anywhere in the \
                 workspace are dead API"
            }
            RuleId::AllowSyntax => "lint:allow escapes must name a known rule and give a reason",
            RuleId::AllowStale => {
                "lint:allow escapes whose rule no longer fires on the covered lines are \
                 stale and must be deleted"
            }
        }
    }

    /// Long-form rationale and remediation guidance for
    /// `--explain <rule>`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1Nondeterminism => {
                "The monitoring engine's contract is byte-exact replay: every digested \
                 artifact is a pure function of (seed, policy, tag set). Wall clocks, \
                 unseeded RNGs, scheduler identity, and unordered hash iteration each \
                 break that pledge invisibly. This rule flags the source tokens \
                 lexically in library crates. Fix by threading the deterministic \
                 TimingModel / seeded SplitMix64, or switching to BTreeMap/BTreeSet. \
                 If a HashMap is lookup-only (never iterated into output), waive with \
                 lint:allow(d1-nondeterminism) stating exactly that."
            }
            RuleId::D2FloatFormat => {
                "Two exporters formatting the same f64 with different precision forks \
                 golden digests. Every float that lands in JSON must go through \
                 tagwatch_obs::json_f64, which renders a canonical shortest-roundtrip \
                 form. The rule flags float precision specs ({:.3}, {:e}) inside \
                 JSON-building format strings (strings containing an escaped quote)."
            }
            RuleId::S1Unsafe => {
                "The workspace is 100% safe Rust: crate roots carry \
                 #![forbid(unsafe_code)] and no file may contain an `unsafe` token. \
                 There is no waiver — delete the unsafe block or move the operation \
                 behind a safe abstraction."
            }
            RuleId::S2Panic => {
                "Library crates return Results; panics are reserved for provably \
                 unreachable states. .unwrap()/.expect()/panic!/todo! in library code \
                 either becomes an error path or carries a lint:allow(s2-panic) whose \
                 reason states the invariant making the branch impossible."
            }
            RuleId::S3Doc => {
                "core and protocols are the paper-facing API: every pub item carries a \
                 doc comment tying it to the concept it implements (TRP/ETRP/MTRP \
                 rounds, Bloom seeds, false-positive math)."
            }
            RuleId::S4Io => {
                "Byte-buffer-only library crates are what make crash/corruption fault \
                 injection exact: tagwatch_store::io is the single filesystem \
                 touchpoint, and the CLI layer owns user-facing paths. std::fs \
                 anywhere else is a durability hole."
            }
            RuleId::D4DigestTaint => {
                "The v2 call-graph rule behind the headline guarantee. Sinks are \
                 functions that feed digested or exported bytes: direct callers of \
                 the FNV-1a primitives, JSON report writers (to_json/to_jsonl), WAL \
                 record encoders, checkpoint serializers, and the Prometheus text \
                 exporter. Sources are wall clocks (Instant::now, SystemTime), \
                 unseeded randomness (thread_rng), scheduler identity \
                 (thread::current), env reads, and unordered iteration (HashMap/\
                 HashSet/RandomState). The analyzer builds a conservative workspace \
                 call graph and reports every sink that can transitively reach a \
                 source, printing the full call chain. Fix by making the reached \
                 function pure (preferred), or waive at the sink's fn line when the \
                 flagged value provably never lands in digested bytes. The bench \
                 crate is excluded: it measures wall time by design and its check \
                 digests hash only tick counts."
            }
            RuleId::C1PoolDiscipline => {
                "Determinism at any thread count holds because concurrency is caged: \
                 worker pools live in analytics::pool (persistent workers, sharded \
                 min-merge) and analytics::parallel (scoped fan-out), and nowhere \
                 else. The rule bans `static mut` outright (workspace-wide, tests \
                 included), flags Mutex/RwLock/Condvar/mpsc/Atomic*/thread::spawn/\
                 thread::scope tokens in any other library module, and walks the \
                 call graph from PooledEngine's methods to prove the merge path \
                 never reaches a nondeterminism source."
            }
            RuleId::U1DeadPub => {
                "A pub item no bin, test, or facade path references is API surface \
                 that can silently rot — exactly how deprecated shims linger. The \
                 rule counts identifier references across the whole workspace \
                 (excluding declarations, use statements, and impl headers); zero \
                 references means the item is dead. Delete it, demote it to \
                 pub(crate), or reference it from a test that pins its contract."
            }
            RuleId::AllowSyntax => {
                "lint:allow(rule): reason is a scoped, auditable waiver. An allow \
                 with an unknown rule name or no reason suppresses nothing and is \
                 itself a finding, so escapes can't decay into folklore."
            }
            RuleId::AllowStale => {
                "An allow whose rule no longer fires on its two covered lines is a \
                 waiver guarding nothing — it hides future regressions at that site. \
                 The workspace pass recomputes raw findings before suppression; any \
                 allow matching none of them is reported. Delete the escape."
            }
        }
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// For call-graph rules: the sink→source call chain as qualified
    /// paths (empty for lexical findings). Rendered as `note:` lines
    /// in human output and a `"chain"` array in the JSON report.
    pub chain: Vec<String>,
}

impl Finding {
    /// A chain-less (lexical) finding.
    #[must_use]
    pub fn new(rule: RuleId, file: &str, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message,
            chain: Vec::new(),
        }
    }
}

/// One valid `lint:allow` escape encountered during analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRecord {
    /// The rule being waived.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the escape comment.
    pub line: u32,
    /// The mandatory justification.
    pub reason: String,
}

/// What part of a crate a file belongs to (drives rule scoping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `src/**` of a workspace crate: full rule set.
    Src,
    /// Integration tests, benches, fixtures: only the unsafe-token scan
    /// and allow-syntax checks.
    Test,
    /// `examples/**`: same reduced set as tests.
    Example,
}

/// Per-file classification computed by the workspace walker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Crate directory name (`core`, `sim`, …; `tagwatch` for the root
    /// facade crate).
    pub crate_name: String,
    /// Which target tree the file sits in.
    pub role: FileRole,
    /// Whether this file is a compilation root (`src/lib.rs`,
    /// `src/main.rs`, `src/bin/*.rs`) and must carry the forbid attr.
    pub is_crate_root: bool,
}

/// Crates whose sources feed digested or exported artifacts: the
/// round engines and everything between them and the byte-stable
/// reports. D1 and S2 both scope to this set.
const LIBRARY_CRATES: [&str; 8] = [
    "core",
    "protocols",
    "sim",
    "analytics",
    "attack",
    "obs",
    "store",
    "tagwatch",
];

/// Crates that build JSON export artifacts by hand (D2 scope).
const EXPORT_CRATES: [&str; 5] = ["obs", "analytics", "bench", "cli", "tagwatch"];

/// Crates whose public API surface must be doc-commented (S3 scope).
const DOC_CRATES: [&str; 2] = ["core", "protocols"];

fn in_library_crate(meta: &FileMeta) -> bool {
    meta.role == FileRole::Src && LIBRARY_CRATES.contains(&meta.crate_name.as_str())
}

/// Code-token view: the full token list with comments filtered out,
/// so adjacency patterns (`.` `unwrap` `(`) match across interleaved
/// comments exactly as the compiler would parse them.
pub(crate) struct Code<'a> {
    src: &'a str,
    toks: &'a [Token],
    /// Indices into `toks` of the non-comment tokens.
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    pub(crate) fn new(src: &'a str, toks: &'a [Token]) -> Self {
        let idx = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        Code { src, toks, idx }
    }

    pub(crate) fn len(&self) -> usize {
        self.idx.len()
    }

    pub(crate) fn tok(&self, k: usize) -> &Token {
        &self.toks[self.idx[k]]
    }

    pub(crate) fn kind(&self, k: usize) -> Option<TokenKind> {
        self.idx.get(k).map(|&i| self.toks[i].kind)
    }

    pub(crate) fn text(&self, k: usize) -> &str {
        self.tok(k).text(self.src)
    }

    pub(crate) fn is_punct(&self, k: usize, c: char) -> bool {
        self.kind(k) == Some(TokenKind::Punct) && self.text(k).starts_with(c)
    }

    pub(crate) fn is_ident(&self, k: usize, name: &str) -> bool {
        self.kind(k) == Some(TokenKind::Ident) && self.text(k) == name
    }

    /// Full-token index of code token `k` (for backward walks that
    /// need to see comments).
    pub(crate) fn full_index(&self, k: usize) -> usize {
        self.idx[k]
    }
}

/// Pre-suppression result of the lexical pass over one file: the raw
/// findings (before any `lint:allow` filtering), the valid allow
/// escapes, and the suppression line sets. The workspace pass uses
/// this to combine lexical and call-graph findings under one
/// suppression step and to detect stale allows.
#[derive(Debug, Clone, Default)]
pub struct RawAnalysis {
    /// Lexical findings before allow suppression (`allow-syntax`
    /// findings included — those are never suppressible).
    pub findings: Vec<Finding>,
    /// Valid allow escapes encountered.
    pub allows: Vec<AllowRecord>,
    /// Rule → set of suppressed lines (each allow covers its own line
    /// and the next).
    pub(crate) allow_lines: AllowLines,
}

/// Analyzes one file's source. Returns the findings (already
/// allow-filtered) and the valid allow escapes encountered.
#[must_use]
pub fn analyze_source(
    meta: &FileMeta,
    rel_path: &str,
    src: &str,
) -> (Vec<Finding>, Vec<AllowRecord>) {
    let raw = analyze_source_raw(meta, rel_path, src);
    let mut findings = raw.findings;
    apply_allows(&mut findings, |file, rule, line| {
        debug_assert_eq!(file, rel_path);
        raw.allow_lines
            .get(&rule)
            .is_some_and(|lines| lines.contains(&line))
    });
    sort_findings(&mut findings);
    (findings, raw.allows)
}

/// Drops suppressible findings for which `allowed(file, rule, line)`
/// holds. The allow meta-rules are never suppressible.
pub(crate) fn apply_allows<F>(findings: &mut Vec<Finding>, allowed: F)
where
    F: Fn(&str, RuleId, u32) -> bool,
{
    findings.retain(|f| {
        matches!(f.rule, RuleId::AllowSyntax | RuleId::AllowStale)
            || !allowed(&f.file, f.rule, f.line)
    });
}

/// Per-file finding order: (line, col, rule).
pub(crate) fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
}

/// The lexical pass without allow suppression — see [`RawAnalysis`].
#[must_use]
pub fn analyze_source_raw(meta: &FileMeta, rel_path: &str, src: &str) -> RawAnalysis {
    let toks = lex(src);
    let code = Code::new(src, &toks);
    let test_ranges = compute_test_ranges(&code);
    let in_test = |k: usize| test_ranges.iter().any(|&(lo, hi)| lo <= k && k <= hi);

    // ---- allow escapes (all roles) -------------------------------
    let (allow_lines, allow_records, mut findings) = parse_allows(rel_path, src, &toks);

    // ---- S1: crate roots must forbid unsafe_code -----------------
    if meta.is_crate_root && !has_forbid_unsafe(&code) {
        findings.push(Finding {
            rule: RuleId::S1Unsafe,
            file: rel_path.to_string(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            chain: Vec::new(),
        });
    }

    let mut push = |rule: RuleId, tok: &Token, message: String| {
        findings.push(Finding {
            rule,
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            chain: Vec::new(),
        });
    };

    // ---- S1: unsafe-token scan (all roles) -----------------------
    for k in 0..code.len() {
        if code.is_ident(k, "unsafe") {
            push(
                RuleId::S1Unsafe,
                code.tok(k),
                "`unsafe` token: the workspace is 100% safe Rust by policy".to_string(),
            );
        }
    }

    // The remaining rules only apply to crate sources.
    if meta.role == FileRole::Src {
        if in_library_crate(meta) {
            check_s2_panics(&code, &mut push, &in_test);
            check_d1_nondeterminism(&code, &mut push, &in_test);
            // `store/src/io.rs` is the designated filesystem touchpoint;
            // everywhere else in library code, disk access is a leak.
            if !(meta.crate_name == "store" && rel_path.ends_with("src/io.rs")) {
                check_s4_io(&code, &mut push, &in_test);
            }
        }
        if EXPORT_CRATES.contains(&meta.crate_name.as_str()) {
            check_d2_float_format(&code, &mut push, &in_test);
        }
        if DOC_CRATES.contains(&meta.crate_name.as_str()) {
            check_s3_docs(&code, &mut push, &in_test);
        }
    }

    RawAnalysis {
        findings,
        allows: allow_records,
        allow_lines,
    }
}

/// S2: panic-family calls in library code.
fn check_s2_panics<F>(code: &Code<'_>, push: &mut F, in_test: &dyn Fn(usize) -> bool)
where
    F: FnMut(RuleId, &Token, String),
{
    for k in 0..code.len() {
        if in_test(k) {
            continue;
        }
        // `.unwrap(` / `.expect(` — method-call position only, so
        // `unwrap_or`, `unwrap_or_else`, field names etc. don't match.
        for name in ["unwrap", "expect"] {
            if code.is_ident(k, name)
                && k > 0
                && code.is_punct(k - 1, '.')
                && code.is_punct(k + 1, '(')
            {
                push(
                    RuleId::S2Panic,
                    code.tok(k),
                    format!(
                        "`.{name}(…)` in library code: return a Result, make the state \
                         infallible by construction, or lint:allow(s2-panic) with a proof"
                    ),
                );
            }
        }
        for name in ["panic", "todo"] {
            if code.is_ident(k, name) && code.is_punct(k + 1, '!') {
                push(
                    RuleId::S2Panic,
                    code.tok(k),
                    format!(
                        "`{name}!` in library code: return an error instead, or \
                         lint:allow(s2-panic) with a proof the branch is unreachable"
                    ),
                );
            }
        }
    }
}

/// S4: filesystem access outside the designated I/O module.
///
/// Matches the idioms the workspace actually uses for disk access:
/// the `fs` path segment (`std::fs`, `fs::write`, `use std::fs`),
/// `OpenOptions`, and `File::` calls. Keeping every other library
/// module byte-buffer-only is what makes crash/corruption fault
/// injection exact, so a new `std::fs` in, say, `analytics` is a
/// durability hole, not a style nit.
fn check_s4_io<F>(code: &Code<'_>, push: &mut F, in_test: &dyn Fn(usize) -> bool)
where
    F: FnMut(RuleId, &Token, String),
{
    let is_path_sep = |k: usize| code.is_punct(k, ':') && code.is_punct(k + 1, ':');
    for k in 0..code.len() {
        if in_test(k) {
            continue;
        }
        let fs_segment = code.is_ident(k, "fs")
            && (is_path_sep(k + 1)
                || (k >= 3 && code.is_ident(k - 3, "std") && is_path_sep(k - 2)));
        let file_call = code.is_ident(k, "File") && is_path_sep(k + 1);
        if fs_segment || file_call || code.is_ident(k, "OpenOptions") {
            push(
                RuleId::S4Io,
                code.tok(k),
                "filesystem access in library code: route persistence through \
                 `tagwatch_store::io` (the only module allowed to touch disk) or move \
                 this to the CLI layer"
                    .to_string(),
            );
        }
    }
}

/// D1: nondeterminism sources in digest/export-reachable crates.
fn check_d1_nondeterminism<F>(code: &Code<'_>, push: &mut F, in_test: &dyn Fn(usize) -> bool)
where
    F: FnMut(RuleId, &Token, String),
{
    let is_path_sep = |k: usize| code.is_punct(k, ':') && code.is_punct(k + 1, ':');
    for k in 0..code.len() {
        if in_test(k) {
            continue;
        }
        if code.is_ident(k, "Instant") && is_path_sep(k + 1) && code.is_ident(k + 3, "now") {
            push(
                RuleId::D1Nondeterminism,
                code.tok(k),
                "`Instant::now()` is wall-clock nondeterminism; thread timing through \
                 the deterministic TimingModel or keep it out of digested paths"
                    .to_string(),
            );
        }
        if code.is_ident(k, "SystemTime") {
            push(
                RuleId::D1Nondeterminism,
                code.tok(k),
                "`SystemTime` is wall-clock nondeterminism in a deterministic path".to_string(),
            );
        }
        if code.is_ident(k, "thread_rng") {
            push(
                RuleId::D1Nondeterminism,
                code.tok(k),
                "`thread_rng()` is unseeded randomness; take an explicit seeded RNG".to_string(),
            );
        }
        if code.is_ident(k, "thread") && is_path_sep(k + 1) && code.is_ident(k + 3, "current") {
            push(
                RuleId::D1Nondeterminism,
                code.tok(k),
                "`thread::current()` leaks scheduler identity into a deterministic path"
                    .to_string(),
            );
        }
        for name in ["HashMap", "HashSet"] {
            if code.is_ident(k, name) {
                push(
                    RuleId::D1Nondeterminism,
                    code.tok(k),
                    format!(
                        "`{name}` iteration order is unspecified: use BTreeMap/BTreeSet \
                         or sort before iterating; if lookup-only, \
                         lint:allow(d1-nondeterminism) with that justification"
                    ),
                );
            }
        }
    }
}

/// D2: float precision specifiers inside JSON-building format strings.
///
/// A string literal is "JSON-building" when its body contains a
/// literal double quote (the workspace writes JSON keys as `\"key\":`
/// in hand-rolled exporters); a float specifier is `{:.`, `{:e`, or
/// `{:E`. Human-readable `Display` strings carry no quotes and are
/// not flagged.
fn check_d2_float_format<F>(code: &Code<'_>, push: &mut F, in_test: &dyn Fn(usize) -> bool)
where
    F: FnMut(RuleId, &Token, String),
{
    for k in 0..code.len() {
        if in_test(k) {
            continue;
        }
        let (quote_marker, body): (&str, &str) = match code.kind(k) {
            Some(TokenKind::Str) => ("\\\"", code.text(k)),
            Some(TokenKind::RawStr) => {
                let t = code.text(k);
                let body = t
                    .split_once('"')
                    .and_then(|(_, rest)| rest.rsplit_once('"'))
                    .map_or("", |(body, _)| body);
                ("\"", body)
            }
            _ => continue,
        };
        let has_float_spec = has_float_precision_spec(body);
        let is_json = body.contains(quote_marker);
        if has_float_spec && is_json {
            push(
                RuleId::D2FloatFormat,
                code.tok(k),
                "float precision formatting inside a JSON-building string: route the \
                 value through tagwatch_obs::json_f64 so every exporter renders floats \
                 identically"
                    .to_string(),
            );
        }
    }
}

/// Whether a format-string body contains a float precision/exponent
/// spec — positional (`{:.3}`, `{:e}`) or named (`{rate:.3}`,
/// `{ticks_per_sec:e}`).
fn has_float_precision_spec(body: &str) -> bool {
    for (i, _) in body.match_indices('{') {
        let rest = &body[i + 1..];
        // Skip the optional argument name/position, then require `:.`
        // (precision) or `:e`/`:E` (exponent) before the closing brace.
        let after_arg = rest.trim_start_matches(|c: char| c.is_alphanumeric() || c == '_');
        if let Some(spec) = after_arg.strip_prefix(':') {
            if spec.starts_with('.') || spec.starts_with('e') || spec.starts_with('E') {
                return true;
            }
        }
    }
    false
}

/// S3: `pub` items must carry a doc comment (or `#[doc…]` attribute).
fn check_s3_docs<F>(code: &Code<'_>, push: &mut F, in_test: &dyn Fn(usize) -> bool)
where
    F: FnMut(RuleId, &Token, String),
{
    const ITEM_KEYWORDS: [&str; 9] = [
        "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
    ];
    for k in 0..code.len() {
        if in_test(k) || !code.is_ident(k, "pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        let item_kw = if code.is_punct(k + 1, '(') {
            continue;
        } else {
            k + 1
        };
        let Some(TokenKind::Ident) = code.kind(item_kw) else {
            continue;
        };
        let kw = code.text(item_kw);
        if !ITEM_KEYWORDS.contains(&kw) {
            continue; // `pub use` re-exports and struct fields
        }
        // `pub mod name;` — the docs live as `//!` inside the module
        // file, which this per-file pass cannot see; only inline
        // `pub mod name { … }` bodies are checked here.
        if kw == "mod" && code.is_punct(item_kw + 2, ';') {
            continue;
        }
        if !has_preceding_doc(code, k) {
            let name = code
                .kind(item_kw + 1)
                .filter(|&kind| kind == TokenKind::Ident)
                .map_or(String::new(), |_| format!(" `{}`", code.text(item_kw + 1)));
            push(
                RuleId::S3Doc,
                code.tok(k),
                format!("public {kw}{name} has no doc comment"),
            );
        }
    }
}

/// Walks backwards from the code token at code-index `k` over
/// attributes and plain comments, looking for a doc comment or a
/// `#[doc…]`-carrying attribute.
fn has_preceding_doc(code: &Code<'_>, k: usize) -> bool {
    let toks = code.toks;
    let mut j = code.full_index(k);
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_comment() {
            if t.is_doc_comment(code.src) {
                return true;
            }
            continue; // plain comment between docs/attrs and the item
        }
        if t.kind == TokenKind::Punct && t.text(code.src) == "]" {
            // Scan back to the matching `[`, watching for `doc` inside.
            let mut depth = 1;
            let mut saw_doc = false;
            while j > 0 && depth > 0 {
                j -= 1;
                let u = &toks[j];
                if u.is_comment() {
                    continue;
                }
                match u.text(code.src) {
                    "]" if u.kind == TokenKind::Punct => depth += 1,
                    "[" if u.kind == TokenKind::Punct => depth -= 1,
                    "doc" if u.kind == TokenKind::Ident => saw_doc = true,
                    _ => {}
                }
            }
            if saw_doc {
                return true;
            }
            // Expect `#` (outer attr) before the `[`; an inner `#![…]`
            // belongs to the enclosing module, so stop there.
            if j > 0 && toks[j - 1].kind == TokenKind::Punct && toks[j - 1].text(code.src) == "#" {
                j -= 1;
                continue;
            }
            if j > 1 && toks[j - 1].text(code.src) == "!" && toks[j - 2].text(code.src) == "#" {
                return false;
            }
            return false;
        }
        return false; // any other token: the item has no doc
    }
    false
}

/// Finds the `#![forbid(unsafe_code)]` inner attribute.
fn has_forbid_unsafe(code: &Code<'_>) -> bool {
    (0..code.len()).any(|k| {
        code.is_punct(k, '#')
            && code.is_punct(k + 1, '!')
            && code.is_punct(k + 2, '[')
            && code.is_ident(k + 3, "forbid")
            && code.is_punct(k + 4, '(')
            && code.is_ident(k + 5, "unsafe_code")
            && code.is_punct(k + 6, ')')
            && code.is_punct(k + 7, ']')
    })
}

/// Computes code-index ranges covered by `#[cfg(test)]` / `#[test]`
/// items (attribute through closing brace of the item body).
pub(crate) fn compute_test_ranges(code: &Code<'_>) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let n = code.len();
    let mut i = 0;
    while i < n {
        if !(code.is_punct(i, '#') && code.is_punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(attr_end) = match_bracket(code, i + 1) else {
            break;
        };
        let joined: String = (i + 2..attr_end).map(|k| code.text(k)).collect();
        let is_test_attr = joined == "test"
            || (joined.starts_with("cfg(")
                && joined.contains("test")
                && !joined.contains("not(test)"));
        if is_test_attr {
            if let Some(body_end) = find_item_body_end(code, attr_end + 1) {
                ranges.push((i, body_end));
            }
        }
        i = attr_end + 1;
    }
    ranges
}

/// From `start` (just past a test attribute), skips further attributes
/// then walks to the item's body `{`, returning the code index of the
/// matching `}` — or `None` for bodyless items (`mod tests;`).
fn find_item_body_end(code: &Code<'_>, start: usize) -> Option<usize> {
    let n = code.len();
    let mut k = start;
    // Skip stacked attributes (`#[test] #[ignore] fn …`).
    while k + 1 < n && code.is_punct(k, '#') && code.is_punct(k + 1, '[') {
        k = match_bracket(code, k + 1)? + 1;
    }
    // Find the body `{` at zero paren/bracket depth.
    let mut depth = 0i32;
    while k < n {
        if code.kind(k) == Some(TokenKind::Punct) {
            match code.text(k).as_bytes()[0] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => return match_brace(code, k),
                b';' if depth == 0 => return None,
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Given the code index of a `[`, returns the index of its matching `]`.
fn match_bracket(code: &Code<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in open..code.len() {
        if code.is_punct(k, '[') {
            depth += 1;
        } else if code.is_punct(k, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Given the code index of a `{`, returns the index of its matching `}`.
fn match_brace(code: &Code<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in open..code.len() {
        if code.is_punct(k, '{') {
            depth += 1;
        } else if code.is_punct(k, '}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

pub(crate) type AllowLines = BTreeMap<RuleId, BTreeSet<u32>>;

/// Parses every `lint:allow(rule): reason` escape out of the comment
/// tokens. Returns the suppression line sets, the valid records, and
/// `allow-syntax` findings for malformed escapes.
fn parse_allows(
    rel_path: &str,
    src: &str,
    toks: &[Token],
) -> (AllowLines, Vec<AllowRecord>, Vec<Finding>) {
    const MARKER: &str = "lint:allow(";
    let mut lines: AllowLines = BTreeMap::new();
    let mut records = Vec::new();
    let mut findings = Vec::new();
    for t in toks {
        // Only plain comments carry directives: doc comments are
        // rendered documentation, where an allow may appear as an
        // *example* (as in this crate's own docs).
        if !t.is_comment() || t.is_doc_comment(src) {
            continue;
        }
        let text = t.text(src);
        let mut search_from = 0;
        while let Some(pos) = text[search_from..].find(MARKER) {
            let at = search_from + pos;
            // Line of this occurrence (block comments can span lines).
            let line = t.line + text[..at].bytes().filter(|&b| b == b'\n').count() as u32;
            let after = &text[at + MARKER.len()..];
            search_from = at + MARKER.len();

            let Some(close) = after.find(')') else {
                findings.push(Finding {
                    rule: RuleId::AllowSyntax,
                    file: rel_path.to_string(),
                    line,
                    col: t.col,
                    message: "unterminated lint:allow( escape".to_string(),
                    chain: Vec::new(),
                });
                continue;
            };
            let rule_name = after[..close].trim();
            let Some(rule) = RuleId::from_name(rule_name) else {
                findings.push(Finding {
                    rule: RuleId::AllowSyntax,
                    file: rel_path.to_string(),
                    line,
                    col: t.col,
                    message: format!("lint:allow names unknown rule `{rule_name}`"),
                    chain: Vec::new(),
                });
                continue;
            };
            // Mandatory `: reason` — to end of line (or comment).
            let rest = &after[close + 1..];
            let rest_line = rest.split(['\n']).next().unwrap_or("");
            let rest_line = rest_line.strip_suffix("*/").unwrap_or(rest_line);
            let reason = rest_line.strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                findings.push(Finding {
                    rule: RuleId::AllowSyntax,
                    file: rel_path.to_string(),
                    line,
                    col: t.col,
                    message: format!(
                        "lint:allow({}) has no reason — write `lint:allow({}): why`",
                        rule.name(),
                        rule.name()
                    ),
                    chain: Vec::new(),
                });
                continue;
            }
            let entry = lines.entry(rule).or_default();
            entry.insert(line);
            entry.insert(line + 1);
            records.push(AllowRecord {
                rule,
                file: rel_path.to_string(),
                line,
                reason: reason.to_string(),
            });
        }
    }
    (lines, records, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_meta() -> FileMeta {
        FileMeta {
            crate_name: "core".to_string(),
            role: FileRole::Src,
            is_crate_root: false,
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        analyze_source(&lib_meta(), "crates/core/src/x.rs", src).0
    }

    #[test]
    fn s2_fires_on_unwrap_and_panic() {
        let f = run("fn f(x: Option<u32>) -> u32 { let y = x.unwrap(); panic!(\"no\"); }");
        let rules: Vec<&str> = f.iter().map(|f| f.rule.name()).collect();
        assert_eq!(rules, ["s2-panic", "s2-panic"]);
    }

    #[test]
    fn s2_ignores_unwrap_or_and_strings() {
        let f = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) } // unwrap() in comment\nconst S: &str = \".unwrap()\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_s2() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "fn f(x: Option<u32>) {\n    // lint:allow(s2-panic): provably Some, inserted above\n    x.unwrap();\n}\n";
        let (f, allows) = analyze_source(&lib_meta(), "x.rs", src);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].reason, "provably Some, inserted above");
    }

    #[test]
    fn allow_without_reason_reports_and_does_not_suppress() {
        let src = "fn f(x: Option<u32>) {\n    x.unwrap(); // lint:allow(s2-panic)\n}\n";
        let f = run(src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.name()).collect();
        assert!(rules.contains(&"s2-panic"));
        assert!(rules.contains(&"allow-syntax"));
    }

    #[test]
    fn allow_unknown_rule_reports() {
        let src = "// lint:allow(nonsense): because\nfn f() {}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::AllowSyntax);
    }

    #[test]
    fn d1_flags_hashmap_and_instant_now() {
        let src = "use std::collections::HashMap;\nfn t() -> std::time::Instant { std::time::Instant::now() }\n";
        let f = run(src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.name()).collect();
        assert_eq!(rules, ["d1-nondeterminism", "d1-nondeterminism"]);
    }

    #[test]
    fn s1_flags_unsafe_everywhere_even_tests() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let p = 0u8; let _ = unsafe { p }; }\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::S1Unsafe);
    }

    #[test]
    fn s1_crate_root_requires_forbid() {
        let meta = FileMeta {
            crate_name: "core".to_string(),
            role: FileRole::Src,
            is_crate_root: true,
        };
        let (f, _) = analyze_source(&meta, "lib.rs", "pub fn x() {}\n");
        assert!(f.iter().any(|f| f.message.contains("forbid(unsafe_code)")));
        let (f, _) = analyze_source(
            &meta,
            "lib.rs",
            "#![forbid(unsafe_code)]\n/// Doc.\npub fn x() {}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn s3_requires_docs_on_pub_items() {
        let src = "/// Documented.\npub fn a() {}\n\npub fn b() {}\n\n#[derive(Debug)]\n/// Above attrs also counts.\npub struct S;\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::S3Doc);
        assert!(f[0].message.contains('b'));
    }

    #[test]
    fn s3_skips_pub_use_pub_crate_and_fields() {
        let src = "pub use std::fmt;\npub(crate) fn h() {}\n/// S.\npub struct S {\n    pub field: u32,\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn s4_fires_on_fs_and_file_handles() {
        let src = "use std::fs;\nfn f() { fs::write(\"x\", b\"y\").ok(); std::fs::File::create(\"x\").ok(); }\n";
        let f = run(src);
        let s4 = f.iter().filter(|f| f.rule == RuleId::S4Io).count();
        assert_eq!(s4, 4, "use + fs::write + std::fs + File:: — {f:?}");
    }

    #[test]
    fn s4_exempts_store_io_module_and_tests() {
        let src = "use std::fs;\nfn f() { fs::write(\"x\", b\"y\").ok(); }\n";
        let store = FileMeta {
            crate_name: "store".to_string(),
            role: FileRole::Src,
            is_crate_root: false,
        };
        let (f, _) = analyze_source(&store, "crates/store/src/io.rs", src);
        assert!(f.is_empty(), "io.rs is the designated touchpoint: {f:?}");
        let (f, _) = analyze_source(&store, "crates/store/src/wal.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RuleId::S4Io),
            "other store modules are in scope: {f:?}"
        );
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"x\", b\"y\").ok(); }\n}\n";
        assert!(run(test_src).is_empty(), "test code may touch temp files");
    }

    #[test]
    fn d2_flags_float_specs_in_json_strings_only() {
        let meta = FileMeta {
            crate_name: "bench".to_string(),
            role: FileRole::Src,
            is_crate_root: false,
        };
        let json = "fn f(v: f64) -> String { format!(\"\\\"x\\\": {:.3}\", v) }";
        let display = "fn f(v: f64) -> String { format!(\"mean {:.3}\", v) }";
        assert_eq!(analyze_source(&meta, "x.rs", json).0.len(), 1);
        assert!(analyze_source(&meta, "x.rs", display).0.is_empty());
    }
}
