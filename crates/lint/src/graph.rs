//! Workspace symbol table and conservative call graph.
//!
//! Built from the per-file [`crate::parser::ParsedFile`] extractions,
//! this module resolves call candidates against every function the
//! workspace defines and produces the adjacency structure the taint
//! engine walks. Resolution is deliberately *over*-approximate — a
//! method call `.merge(…)` gets an edge to every workspace method
//! named `merge` — because for determinism proofs a spurious edge can
//! only cause a false alarm (annotate it away), while a missing edge
//! would silently un-prove the digest-purity guarantee.
//!
//! Resolution order for a call candidate, first hit wins:
//!
//! 1. **Method calls** (`x.name(…)`): every `impl`-block function of
//!    that name, workspace-wide.
//! 2. **Bare calls** (`name(…)`): a function of that name in the
//!    caller's own module, else the target of a `use` import of that
//!    name.
//! 3. **Path calls** (`a::b::name(…)`): the first segment is expanded
//!    (`crate`/`self`/`super`, `use` aliases, `tagwatch_*` crate
//!    names), then matched exactly against qualified paths, then by
//!    path-suffix (`RoundScratch::new` matches
//!    `core::engine::RoundScratch::new`).
//!
//! Calls that resolve to nothing but start with a workspace crate
//! root are counted as *unresolved* (surfaced in the `--graph-out`
//! artifact); everything else is external (`std`, vendored) and
//! ignored. The artifact is deterministic: node ids are assigned
//! after sorting by qualified path, file, and line, and the JSON is
//! digested with the same FNV-1a helper as every other export.

use std::collections::{BTreeMap, BTreeSet};

use tagwatch_obs::{fnv1a_lines, json_escape};

use crate::parser::{ParsedFile, SourceHit, TypeKind};
use crate::rules::{FileMeta, FileRole};

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Fully qualified path (`analytics::pool::PooledEngine::new`).
    pub qual: String,
    /// Bare name.
    pub name: String,
    /// Module path (qualified path minus type and name segments).
    pub module: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Crate directory name.
    pub crate_name: String,
    /// `pub` without restriction.
    pub is_pub: bool,
    /// Defined in an `impl`/trait block.
    pub is_method: bool,
    /// In test code: `#[cfg(test)]` regions, or any file whose role is
    /// not `Src` (integration tests, examples, fixtures).
    pub in_test: bool,
    /// Nondeterminism-source tokens in the body.
    pub sources: Vec<SourceHit>,
    /// Concurrency-primitive tokens in the body.
    pub concurrency: Vec<SourceHit>,
}

/// One non-function item (for the dead-API rule).
#[derive(Debug, Clone)]
pub struct TypeNode {
    /// Fully qualified path.
    pub qual: String,
    /// Bare name.
    pub name: String,
    /// Declaration keyword kind.
    pub kind: TypeKind,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Crate directory name.
    pub crate_name: String,
    /// `pub` without restriction.
    pub is_pub: bool,
    /// In test code.
    pub in_test: bool,
}

/// The resolved workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Function nodes, sorted by (qual, file, line); the index is the
    /// node id used in `edges`.
    pub fns: Vec<FnNode>,
    /// Caller → callee edges, sorted and deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// Successor lists derived from `edges`.
    pub succ: Vec<Vec<usize>>,
    /// Non-function items, sorted like `fns`.
    pub types: Vec<TypeNode>,
    /// Workspace-wide identifier reference counts (declaration name
    /// tokens, `use` statements, and `impl` headers excluded).
    pub refs: BTreeMap<String, u32>,
    /// `static mut` declarations: (file, name, line, col).
    pub statics_mut: Vec<(String, String, u32, u32)>,
    /// Unresolved workspace-rooted calls: (caller id, path, line).
    pub unresolved: Vec<(usize, String, u32)>,
}

/// Workspace crate directory names (roots of qualified paths).
const WORKSPACE_CRATES: [&str; 11] = [
    "core",
    "protocols",
    "sim",
    "analytics",
    "attack",
    "obs",
    "store",
    "bench",
    "cli",
    "lint",
    "tagwatch",
];

impl CallGraph {
    /// Builds the graph from per-file parser output. Each entry is
    /// (workspace-relative path, file classification, parsed items).
    #[must_use]
    pub fn build(files: &[(String, FileMeta, ParsedFile)]) -> CallGraph {
        let mut g = CallGraph::default();

        // ---- nodes ------------------------------------------------
        for (rel, meta, parsed) in files {
            let nonsrc = meta.role != FileRole::Src;
            for f in &parsed.fns {
                let module = module_of(&f.qual, f.is_method);
                g.fns.push(FnNode {
                    qual: f.qual.clone(),
                    name: f.name.clone(),
                    module,
                    file: rel.clone(),
                    line: f.line,
                    col: f.col,
                    crate_name: meta.crate_name.clone(),
                    is_pub: f.is_pub,
                    is_method: f.is_method,
                    in_test: f.in_test || nonsrc,
                    sources: f.sources.clone(),
                    concurrency: f.concurrency.clone(),
                });
            }
            for t in &parsed.types {
                g.types.push(TypeNode {
                    qual: t.qual.clone(),
                    name: t.name.clone(),
                    kind: t.kind,
                    file: rel.clone(),
                    line: t.line,
                    col: t.col,
                    crate_name: meta.crate_name.clone(),
                    is_pub: t.is_pub,
                    in_test: t.in_test || nonsrc,
                });
            }
            for (name, count) in &parsed.refs {
                *g.refs.entry(name.clone()).or_insert(0) += count;
            }
            for s in &parsed.statics_mut {
                g.statics_mut.push((rel.clone(), s.what.clone(), s.line, 1));
            }
        }
        g.fns
            .sort_by(|a, b| (&a.qual, &a.file, a.line).cmp(&(&b.qual, &b.file, b.line)));
        g.types
            .sort_by(|a, b| (&a.qual, &a.file, a.line).cmp(&(&b.qual, &b.file, b.line)));
        g.statics_mut.sort();

        // ---- indexes ----------------------------------------------
        let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_module_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in g.fns.iter().enumerate() {
            by_qual.entry(&f.qual).or_default().push(i);
            if f.is_method {
                methods_by_name.entry(&f.name).or_default().push(i);
            } else {
                by_module_name
                    .entry((&f.module, &f.name))
                    .or_default()
                    .push(i);
            }
        }
        // Suffix matching scans all fns; precompute split paths once.
        let split: Vec<Vec<&str>> = g.fns.iter().map(|f| f.qual.split("::").collect()).collect();

        // ---- edges ------------------------------------------------
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut unresolved: Vec<(usize, String, u32)> = Vec::new();
        for (rel, meta, parsed) in files {
            for f in &parsed.fns {
                // Find this fn's node id (qual + file + line is unique).
                let Some(&from) = by_qual.get(f.qual.as_str()).and_then(|ids| {
                    ids.iter()
                        .find(|&&i| g.fns[i].file == *rel && g.fns[i].line == f.line)
                }) else {
                    continue;
                };
                for call in &f.calls {
                    let targets = resolve(
                        call.method,
                        &call.path,
                        &g.fns[from],
                        &parsed.imports,
                        &by_qual,
                        &methods_by_name,
                        &by_module_name,
                        &split,
                    );
                    match targets {
                        Resolution::Hits(ids) => {
                            for to in ids {
                                if to != from {
                                    edges.insert((from, to));
                                }
                            }
                        }
                        Resolution::Unresolved(path) => {
                            unresolved.push((from, path, call.line));
                        }
                        Resolution::External => {}
                    }
                }
                let _ = meta;
            }
        }
        g.edges = edges.into_iter().collect();
        g.unresolved = unresolved;
        g.unresolved.sort();
        g.unresolved.dedup();
        g.succ = vec![Vec::new(); g.fns.len()];
        for &(a, b) in &g.edges {
            g.succ[a].push(b);
        }
        g
    }

    /// Node ids of functions whose qualified path ends with the given
    /// `::`-separated suffix (segment-aligned).
    #[must_use]
    pub fn find_by_suffix(&self, suffix: &str) -> Vec<usize> {
        let want: Vec<&str> = suffix.split("::").collect();
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                let have: Vec<&str> = f.qual.split("::").collect();
                have.len() >= want.len() && have[have.len() - want.len()..] == want[..]
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over successors from `start`, returning the parent map for
    /// chain reconstruction (`parent[i] == usize::MAX` for the root or
    /// unvisited nodes; check `visited`).
    #[must_use]
    pub fn bfs(&self, start: usize) -> (Vec<bool>, Vec<usize>) {
        let n = self.fns.len();
        let mut visited = vec![false; n];
        let mut parent = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.succ[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        (visited, parent)
    }

    /// The call chain `start → … → end` as qualified paths, using the
    /// parent map from [`CallGraph::bfs`].
    #[must_use]
    pub fn chain(&self, parent: &[usize], end: usize) -> Vec<String> {
        let mut rev = vec![end];
        let mut cur = end;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            rev.push(cur);
        }
        rev.reverse();
        rev.into_iter().map(|i| self.fns[i].qual.clone()).collect()
    }

    /// The deterministic JSON call-graph artifact (`--graph-out`):
    /// fixed field order, adjacency grouped per caller, FNV-digested
    /// like every other export in the workspace.
    #[must_use]
    pub fn to_json(&self) -> String {
        let lines = self.body_lines();
        let digest = fnv1a_lines(lines.iter());
        let mut out = String::new();
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!("  \"digest\": \"fnv64:{digest:016x}\"\n}}\n"));
        out
    }

    fn body_lines(&self) -> Vec<String> {
        let mut lines = vec![
            "{".to_string(),
            "  \"schema\": \"tagwatch-lint-graph/v1\",".to_string(),
            format!("  \"fn_count\": {},", self.fns.len()),
            format!("  \"edge_count\": {},", self.edges.len()),
            format!("  \"type_count\": {},", self.types.len()),
            format!("  \"unresolved_count\": {},", self.unresolved.len()),
            "  \"fns\": [".to_string(),
        ];
        for (i, f) in self.fns.iter().enumerate() {
            let comma = if i + 1 < self.fns.len() { "," } else { "" };
            let sources: Vec<String> = f
                .sources
                .iter()
                .map(|s| format!("\"{}@{}\"", json_escape(&s.what), s.line))
                .collect();
            let concurrency: Vec<String> = f
                .concurrency
                .iter()
                .map(|s| format!("\"{}@{}\"", json_escape(&s.what), s.line))
                .collect();
            lines.push(format!(
                "    {{\"id\": {i}, \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"pub\": {}, \"method\": {}, \"test\": {}, \"sources\": [{}], \
                 \"concurrency\": [{}]}}{comma}",
                json_escape(&f.qual),
                json_escape(&f.file),
                f.line,
                f.is_pub,
                f.is_method,
                f.in_test,
                sources.join(", "),
                concurrency.join(", "),
            ));
        }
        lines.push("  ],".to_string());
        lines.push("  \"calls\": [".to_string());
        let mut grouped: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &self.edges {
            grouped.entry(a).or_default().push(b);
        }
        let total = grouped.len();
        for (i, (from, tos)) in grouped.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let tos: Vec<String> = tos.iter().map(ToString::to_string).collect();
            lines.push(format!(
                "    {{\"from\": {from}, \"to\": [{}]}}{comma}",
                tos.join(", ")
            ));
        }
        lines.push("  ],".to_string());
        lines
    }
}

/// A call candidate's resolution outcome.
enum Resolution {
    Hits(Vec<usize>),
    Unresolved(String),
    External,
}

/// The module path of a qualified fn path: strips the name, and the
/// type segment for methods.
fn module_of(qual: &str, is_method: bool) -> String {
    let segs: Vec<&str> = qual.split("::").collect();
    let drop = if is_method { 2 } else { 1 };
    let keep = segs.len().saturating_sub(drop).max(1);
    segs[..keep].join("::")
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    method: bool,
    path: &[String],
    caller: &FnNode,
    imports: &BTreeMap<String, Vec<String>>,
    by_qual: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    by_module_name: &BTreeMap<(&str, &str), Vec<usize>>,
    split: &[Vec<&str>],
) -> Resolution {
    if method {
        let name = path.last().map(String::as_str).unwrap_or_default();
        return match methods_by_name.get(name) {
            Some(ids) => Resolution::Hits(ids.clone()),
            None => Resolution::External,
        };
    }
    if path.len() == 1 {
        let name = path[0].as_str();
        if let Some(ids) = by_module_name.get(&(caller.module.as_str(), name)) {
            return Resolution::Hits(ids.clone());
        }
        if let Some(full) = imports.get(name) {
            return resolve_expanded(&expand_first(full, caller), by_qual, split);
        }
        // Locals, closures, std preludes — external.
        return Resolution::External;
    }
    // Multi-segment: splice imports of the first segment, then expand
    // `crate`/`self`/`super`/crate aliases.
    let mut full: Vec<String> = path.to_vec();
    if let Some(mapped) = imports.get(&full[0]) {
        let mut spliced = mapped.clone();
        spliced.extend(full[1..].iter().cloned());
        full = spliced;
    }
    resolve_expanded(&expand_first(&full, caller), by_qual, split)
}

/// Expands the first path segment against the caller's position:
/// `crate` → crate root, `self` → module, `super` → parent module,
/// `tagwatch_x` → `x`.
fn expand_first(path: &[String], caller: &FnNode) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    match path.first().map(String::as_str) {
        Some("crate") => out.push(caller.crate_name.clone()),
        Some("self") => out.extend(caller.module.split("::").map(str::to_string)),
        Some("super") => {
            let segs: Vec<&str> = caller.module.split("::").collect();
            let keep = segs.len().saturating_sub(1).max(1);
            out.extend(segs[..keep].iter().map(|s| (*s).to_string()));
        }
        Some(first) => match crate::parser::crate_alias(first) {
            Some(root) => out.push(root),
            None => out.push(first.to_string()),
        },
        None => {}
    }
    out.extend(path.iter().skip(1).cloned());
    out
}

/// Exact-qual match, then segment-aligned suffix match, then
/// unresolved-vs-external classification.
fn resolve_expanded(
    full: &[String],
    by_qual: &BTreeMap<&str, Vec<usize>>,
    split: &[Vec<&str>],
) -> Resolution {
    let joined = full.join("::");
    if let Some(ids) = by_qual.get(joined.as_str()) {
        return Resolution::Hits(ids.clone());
    }
    let want: Vec<&str> = full.iter().map(String::as_str).collect();
    let hits: Vec<usize> = split
        .iter()
        .enumerate()
        .filter(|(_, have)| have.len() >= want.len() && have[have.len() - want.len()..] == want[..])
        .map(|(i, _)| i)
        .collect();
    if !hits.is_empty() {
        return Resolution::Hits(hits);
    }
    // Re-export hop: `tagwatch_obs::fnv1a_lines` is written against
    // the crate facade (`pub use export::fnv1a_lines`), but the
    // definition lives at `obs::export::fnv1a_lines`. Match the crate
    // root exactly and the remaining segments as a suffix.
    if want.len() >= 2 {
        let (root, rest) = (want[0], &want[1..]);
        let hits: Vec<usize> = split
            .iter()
            .enumerate()
            .filter(|(_, have)| {
                have.first() == Some(&root)
                    && have.len() > rest.len()
                    && have[have.len() - rest.len()..] == rest[..]
            })
            .map(|(i, _)| i)
            .collect();
        if !hits.is_empty() {
            return Resolution::Hits(hits);
        }
    }
    let first = full.first().map(String::as_str).unwrap_or_default();
    if WORKSPACE_CRATES.contains(&first) && first != "core" {
        // `core::…` is ambiguous with Rust's own core; every other
        // workspace root that fails to resolve is worth surfacing.
        return Resolution::Unresolved(joined);
    }
    Resolution::External
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;
    use crate::rules::{FileMeta, FileRole};

    fn meta(crate_name: &str) -> FileMeta {
        FileMeta {
            crate_name: crate_name.to_string(),
            role: FileRole::Src,
            is_crate_root: false,
        }
    }

    fn build(files: &[(&str, &str, &str)]) -> CallGraph {
        let parsed: Vec<(String, FileMeta, ParsedFile)> = files
            .iter()
            .map(|(rel, crate_name, src)| {
                ((*rel).to_string(), meta(crate_name), parse_source(src, rel))
            })
            .collect();
        CallGraph::build(&parsed)
    }

    #[test]
    fn same_module_and_import_calls_resolve() {
        let g = build(&[
            (
                "crates/core/src/a.rs",
                "core",
                "use tagwatch_obs::fnv1a_lines;\npub fn caller() { helper(); fnv1a_lines([\"x\"]); }\nfn helper() {}\n",
            ),
            (
                "crates/obs/src/export.rs",
                "obs",
                "pub fn fnv1a_lines(_x: [&str; 1]) {}\n",
            ),
        ]);
        let caller = g.fns.iter().position(|f| f.name == "caller").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        let fnv = g.fns.iter().position(|f| f.name == "fnv1a_lines").unwrap();
        assert!(g.edges.contains(&(caller, helper)));
        assert!(g.edges.contains(&(caller, fnv)));
    }

    #[test]
    fn method_calls_fan_out_to_all_impls() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "core",
            "struct A;\nstruct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn run(a: &A) { a.go(); }\n",
        )]);
        let run = g.fns.iter().position(|f| f.name == "run").unwrap();
        let gos: Vec<usize> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == "go")
            .map(|(i, _)| i)
            .collect();
        for go in gos {
            assert!(g.edges.contains(&(run, go)), "missing edge to {go}");
        }
    }

    #[test]
    fn suffix_matching_links_cross_crate_paths() {
        let g = build(&[
            (
                "crates/analytics/src/x.rs",
                "analytics",
                "pub fn use_it() { tagwatch_core::engine::RoundScratch::new(); }\n",
            ),
            (
                "crates/core/src/engine.rs",
                "core",
                "pub struct RoundScratch;\nimpl RoundScratch { pub fn new() -> Self { RoundScratch } }\n",
            ),
        ]);
        let from = g.fns.iter().position(|f| f.name == "use_it").unwrap();
        let to = g.fns.iter().position(|f| f.name == "new").unwrap();
        assert!(g.edges.contains(&(from, to)));
    }

    #[test]
    fn bfs_chains_reconstruct_paths() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "core",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let a = g.fns.iter().position(|f| f.name == "a").unwrap();
        let c = g.fns.iter().position(|f| f.name == "c").unwrap();
        let (visited, parent) = g.bfs(a);
        assert!(visited[c]);
        let chain = g.chain(&parent, c);
        assert_eq!(chain, ["core::a::a", "core::a::b", "core::a::c"]);
    }

    #[test]
    fn graph_json_is_byte_stable() {
        let g = build(&[(
            "crates/core/src/a.rs",
            "core",
            "fn a() { b(); }\nfn b() {}\n",
        )]);
        let j1 = g.to_json();
        let j2 = g.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": \"tagwatch-lint-graph/v1\""));
        assert!(j1.ends_with("}\n"));
    }
}
