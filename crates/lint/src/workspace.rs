//! Workspace discovery: which `.rs` files to analyze and how each is
//! classified.
//!
//! The walk is deliberately convention-based rather than
//! manifest-parsing: the workspace layout is fixed (`crates/<name>/…`
//! plus the root facade crate), and a convention walk keeps the
//! analyzer free of TOML parsing. Vendored stand-ins (`vendor/`),
//! build output (`target/`), and this crate's own violation fixtures
//! (`crates/lint/tests/fixtures/`) are never scanned.
//!
//! Directory entries are sorted at every level, so the file list —
//! and therefore the findings report and its digest — is identical
//! across platforms and filesystem orders.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{FileMeta, FileRole};

/// One source file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (report key).
    pub rel: String,
    /// Absolute path for reading.
    pub path: PathBuf,
    /// Rule-scoping classification.
    pub meta: FileMeta,
}

/// Walks the workspace rooted at `root` and returns every analyzable
/// source file, sorted by relative path.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal; a missing optional
/// directory (e.g. a crate without `tests/`) is not an error.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();

    // Workspace member crates.
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let name = file_name(&crate_dir);
        collect_tree(
            &crate_dir.join("src"),
            root,
            &name,
            FileRole::Src,
            &mut files,
        )?;
        collect_tree(
            &crate_dir.join("tests"),
            root,
            &name,
            FileRole::Test,
            &mut files,
        )?;
        collect_tree(
            &crate_dir.join("examples"),
            root,
            &name,
            FileRole::Example,
            &mut files,
        )?;
    }

    // The root facade crate and its tests/examples.
    collect_tree(
        &root.join("src"),
        root,
        "tagwatch",
        FileRole::Src,
        &mut files,
    )?;
    collect_tree(
        &root.join("tests"),
        root,
        "tagwatch",
        FileRole::Test,
        &mut files,
    )?;
    collect_tree(
        &root.join("examples"),
        root,
        "tagwatch",
        FileRole::Example,
        &mut files,
    )?;

    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Locates the workspace root: walks up from `start` until a directory
/// holding a `Cargo.toml` that declares `[workspace]`.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Sorted subdirectories of `dir` (empty when `dir` does not exist).
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(out);
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (sorted), classifying
/// each. Skips the lint fixture tree, which holds deliberate
/// violations for the rule tests.
fn collect_tree(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    role: FileRole,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(()); // optional tree absent
    };
    let mut paths: Vec<PathBuf> = entries
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    paths.sort();
    for path in paths {
        let name = file_name(&path);
        if path.is_dir() {
            if crate_name == "lint" && name == "fixtures" {
                continue;
            }
            collect_tree(&path, root, crate_name, role, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let is_crate_root = role == FileRole::Src
                && (rel.ends_with("/src/lib.rs")
                    || rel.ends_with("/src/main.rs")
                    || rel == "src/lib.rs"
                    || rel == "src/main.rs"
                    || rel.contains("/src/bin/"));
            out.push(SourceFile {
                rel,
                path,
                meta: FileMeta {
                    crate_name: crate_name.to_string(),
                    role,
                    is_crate_root,
                },
            });
        }
    }
    Ok(())
}
