//! # tagwatch-lint
//!
//! The workspace's determinism-and-soundness analyzer.
//!
//! The whole reproduction rests on a promise the type system cannot
//! state: that the server can **byte-exactly** precompute what honest
//! tags emit, and that every exported artifact (soak reports, perf
//! baselines, metrics snapshots) is a pure function of its seed. One
//! stray `Instant::now()`, one `HashMap` iteration reaching an
//! exporter, one `{:.3}` float formatted outside the shared JSON
//! serializer — and the golden digests CI pins start flaking for
//! reasons no test names.
//!
//! This crate makes those project rules machine-checked at the source
//! level, with a deliberately small footprint:
//!
//! * [`lexer`] — a hand-rolled, comment/string/raw-string-aware Rust
//!   lexer (no `syn`; the build is offline and the analyzer must stay
//!   auditable).
//! * [`rules`] — the rule catalog (`d1-nondeterminism`,
//!   `d2-float-format`, `s1-unsafe`, `s2-panic`, `s3-doc`) plus the
//!   `lint:allow(rule): reason` escape hatch.
//! * [`workspace`] — convention-based file discovery (vendored code
//!   and rule fixtures excluded), sorted for determinism.
//! * [`report`] — rustc-style diagnostics and the FNV-digested JSON
//!   findings report, built with the same export helpers as
//!   `tagwatch-obs`.
//!
//! See `docs/LINTING.md` for the rule catalog, rationale, and how to
//! add a rule. The `tagwatch-lint` binary wires this into CI:
//! `cargo run -p tagwatch-lint --release -- --deny`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

pub use report::Analysis;
pub use rules::{analyze_source, AllowRecord, FileMeta, FileRole, Finding, RuleId};
pub use workspace::{discover, find_root, SourceFile};

/// Analyzes every non-vendored source file under `root`.
///
/// # Errors
///
/// Propagates I/O errors from file discovery or reading.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = discover(root)?;
    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };
    for file in &files {
        let src = std::fs::read_to_string(&file.path)?;
        let (findings, allows) = analyze_source(&file.meta, &file.rel, &src);
        analysis.findings.extend(findings);
        analysis.allows.extend(allows);
    }
    // Per-file output is already ordered; files arrive sorted, so the
    // global order is (file, line, col, rule) without a re-sort. Keep
    // the sort anyway as a guard against future per-file changes.
    analysis.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    Ok(analysis)
}
