//! # tagwatch-lint
//!
//! The workspace's determinism-and-soundness analyzer.
//!
//! The whole reproduction rests on a promise the type system cannot
//! state: that the server can **byte-exactly** precompute what honest
//! tags emit, and that every exported artifact (soak reports, perf
//! baselines, metrics snapshots) is a pure function of its seed. One
//! stray `Instant::now()`, one `HashMap` iteration reaching an
//! exporter, one `{:.3}` float formatted outside the shared JSON
//! serializer — and the golden digests CI pins start flaking for
//! reasons no test names.
//!
//! v1 made those rules machine-checked lexically. v2 grows the
//! analyzer into a whole-workspace flow analysis — the lexical rules
//! cannot see that a "clean" helper transitively calls a wall clock
//! before its result reaches an FNV digest — while keeping the same
//! deliberately small, dependency-free footprint:
//!
//! * [`lexer`] — a hand-rolled, comment/string/raw-string-aware Rust
//!   lexer (no `syn`; the build is offline and the analyzer must stay
//!   auditable).
//! * [`parser`] — item extraction over the token stream: functions
//!   with qualified module paths, `impl` contexts, `use` imports, and
//!   per-body call candidates.
//! * [`graph`] — the workspace symbol table and conservative call
//!   graph, exported as the deterministic `--graph-out` artifact.
//! * [`taint`] — the reachability engine behind `d4-digest-taint`,
//!   `c1-pool-discipline`, and `u1-dead-pub`.
//! * [`rules`] — the lexical rule catalog (`d1-nondeterminism`,
//!   `d2-float-format`, `s1-unsafe`, `s2-panic`, `s3-doc`, `s4-io`)
//!   plus the `lint:allow(rule): reason` escape hatch and the stale-
//!   allow audit.
//! * [`workspace`] — convention-based file discovery (vendored code
//!   and rule fixtures excluded), sorted for determinism.
//! * [`report`] — rustc-style diagnostics (taint chains rendered as
//!   `note:` lines) and the FNV-digested JSON findings report, built
//!   with the same export helpers as `tagwatch-obs`.
//!
//! See `docs/LINTING.md` for the rule catalog, resolution limits, and
//! worked diagnostics. The `tagwatch-lint` binary wires this into CI:
//! `cargo run -p tagwatch-lint --release -- --deny`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;
pub mod workspace;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

pub use graph::CallGraph;
pub use report::Analysis;
pub use rules::{analyze_source, AllowRecord, FileMeta, FileRole, Finding, RuleId};
pub use workspace::{discover, find_root, SourceFile};

/// Analyzes every non-vendored source file under `root`: the lexical
/// pass, the call-graph taint pass, one combined suppression step, and
/// the stale-allow audit.
///
/// # Errors
///
/// Propagates I/O errors from file discovery or reading.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    analyze_workspace_full(root).map(|(analysis, _)| analysis)
}

/// [`analyze_workspace`], also returning the resolved call graph for
/// the `--graph-out` artifact.
///
/// # Errors
///
/// Propagates I/O errors from file discovery or reading.
pub fn analyze_workspace_full(root: &Path) -> io::Result<(Analysis, CallGraph)> {
    let files = discover(root)?;
    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };
    let mut raw_findings: Vec<Finding> = Vec::new();
    let mut allow_lines_by_file: BTreeMap<String, rules::AllowLines> = BTreeMap::new();
    let mut parsed_files: Vec<(String, FileMeta, parser::ParsedFile)> = Vec::new();

    for file in &files {
        let src = std::fs::read_to_string(&file.path)?;
        let raw = rules::analyze_source_raw(&file.meta, &file.rel, &src);
        raw_findings.extend(raw.findings);
        analysis.allows.extend(raw.allows);
        allow_lines_by_file.insert(file.rel.clone(), raw.allow_lines);
        parsed_files.push((
            file.rel.clone(),
            file.meta.clone(),
            parser::parse_source(&src, &file.rel),
        ));
    }

    let graph = CallGraph::build(&parsed_files);
    raw_findings.extend(taint::check(&graph));

    // ---- stale-allow audit (against raw, pre-suppression findings) --
    for a in &analysis.allows {
        let live = raw_findings.iter().any(|f| {
            f.rule == a.rule && f.file == a.file && (f.line == a.line || f.line == a.line + 1)
        });
        if !live {
            raw_findings.push(Finding {
                rule: RuleId::AllowStale,
                file: a.file.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "lint:allow({}) is stale: the rule no longer fires on this line \
                     or the next — delete the escape",
                    a.rule.name()
                ),
                chain: Vec::new(),
            });
        }
    }

    // ---- one suppression step over lexical + graph findings ---------
    let mut findings = raw_findings;
    rules::apply_allows(&mut findings, |file, rule, line| {
        allow_lines_by_file
            .get(file)
            .and_then(|lines| lines.get(&rule))
            .is_some_and(|lines| lines.contains(&line))
    });
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    analysis.findings = findings;
    Ok((analysis, graph))
}
