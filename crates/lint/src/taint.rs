//! The reachability/taint engine: the three call-graph rule families
//! evaluated over [`crate::graph::CallGraph`].
//!
//! * **`d4-digest-taint`** — every digest/export *sink* (direct
//!   callers of the FNV-1a primitives, plus the named serializers:
//!   JSON report writers, WAL record encoders, checkpoint
//!   serializers, the Prometheus text exporter, span/flight JSONL
//!   writers) is BFS-walked through its callees; reaching a function
//!   containing a nondeterminism *source* token (wall clock, unseeded
//!   RNG, scheduler identity, env reads, unordered hash iteration) is
//!   a violation, reported at the sink with the full call chain.
//! * **`c1-pool-discipline`** — `static mut` is banned workspace-wide;
//!   concurrency primitives (`Mutex`/`RwLock`/`Condvar`/`mpsc`/
//!   `Atomic*`/`thread::spawn`/`thread::scope`) are confined to the
//!   designated pool modules; and the merge path reachable from
//!   `PooledEngine`'s methods must itself be taint-clean.
//! * **`u1-dead-pub`** — a `pub` item whose name is referenced nowhere
//!   in the workspace (outside its own declaration, `use` statements,
//!   and `impl` headers) is dead API.
//!
//! Scoping: test code (both `#[cfg(test)]` regions and non-`Src`
//! files) is exempt from d4 and the c1 confinement check; the `bench`
//! crate is exempt from d4 because it measures wall time by design
//! (its check digests hash only tick counts, which PR 8 pins); the
//! lint crate's own report digesting participates like everyone
//! else's.

use crate::graph::CallGraph;
use crate::rules::{Finding, RuleId};

/// Files allowed to contain concurrency primitives: the persistent
/// worker pool and the scoped fan-out helper.
const DESIGNATED_CONCURRENCY_FILES: [&str; 2] = [
    "crates/analytics/src/parallel.rs",
    "crates/analytics/src/pool.rs",
];

/// Qualified-path suffixes that are digest/export sinks even when
/// they do not call the FNV primitives directly.
const SINK_SUFFIXES: [&str; 6] = [
    "to_prometheus_text",
    "to_jsonl",
    "to_json",
    "wal::encode_record",
    "Checkpoint::to_bytes",
    "SpanSink::render",
];

/// Names of the FNV-1a digest primitives; any direct caller is a sink.
const DIGEST_PRIMITIVES: [&str; 2] = ["fnv1a_bytes", "fnv1a_lines"];

/// Runs every call-graph rule. Findings come back unsorted and
/// unsuppressed; the workspace pass merges, suppresses, and sorts.
#[must_use]
pub fn check(graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_d4(graph, &mut findings);
    check_c1(graph, &mut findings);
    check_u1(graph, &mut findings);
    findings
}

/// Whether fn `i` is exempt from taint walks (test code, bench crate).
fn taint_exempt(graph: &CallGraph, i: usize) -> bool {
    let f = &graph.fns[i];
    f.in_test || f.crate_name == "bench"
}

/// The sink set for d4: direct FNV callers plus the named serializers.
fn sink_ids(graph: &CallGraph) -> Vec<usize> {
    let mut sinks: Vec<usize> = Vec::new();
    let primitive_ids: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| DIGEST_PRIMITIVES.contains(&f.name.as_str()))
        .map(|(i, _)| i)
        .collect();
    for &(a, b) in &graph.edges {
        if primitive_ids.contains(&b) && !primitive_ids.contains(&a) {
            sinks.push(a);
        }
    }
    for suffix in SINK_SUFFIXES {
        sinks.extend(graph.find_by_suffix(suffix));
    }
    sinks.retain(|&i| !taint_exempt(graph, i));
    sinks.sort_unstable();
    sinks.dedup();
    sinks
}

/// Walks callees from `sink`; on the first reachable function carrying
/// a source token, returns the finding with the full chain.
fn taint_walk(graph: &CallGraph, sink: usize, rule: RuleId, context: &str) -> Option<Finding> {
    let (visited, parent) = graph.bfs(sink);
    // Deterministic pick: the lowest-id tainted node (node ids are
    // stable because they are assigned after sorting by path).
    let hit = (0..graph.fns.len())
        .find(|&i| visited[i] && !graph.fns[i].sources.is_empty() && !taint_exempt(graph, i))?;
    let mut chain = graph.chain(&parent, hit);
    let src = &graph.fns[hit].sources[0];
    if let Some(last) = chain.last_mut() {
        *last = format!(
            "{last} [{} at {}:{}]",
            src.what, graph.fns[hit].file, src.line
        );
    }
    let sink_fn = &graph.fns[sink];
    Some(Finding {
        rule,
        file: sink_fn.file.clone(),
        line: sink_fn.line,
        col: sink_fn.col,
        message: format!(
            "{context}`{}` can reach nondeterminism source `{}` (in `{}`) — the \
             digested bytes are no longer a pure function of the seed",
            sink_fn.qual, src.what, graph.fns[hit].qual
        ),
        chain,
    })
}

/// d4-digest-taint: no sink reaches a source.
fn check_d4(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for sink in sink_ids(graph) {
        if let Some(f) = taint_walk(graph, sink, RuleId::D4DigestTaint, "digest sink ") {
            findings.push(f);
        }
    }
}

/// c1-pool-discipline: static mut ban, primitive confinement,
/// PooledEngine merge-path purity.
fn check_c1(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for (file, name, line, col) in &graph.statics_mut {
        findings.push(Finding {
            rule: RuleId::C1PoolDiscipline,
            file: file.clone(),
            line: *line,
            col: *col,
            message: format!(
                "`static mut {name}`: mutable globals are banned workspace-wide — \
                 use the pool's channel topology or a local"
            ),
            chain: Vec::new(),
        });
    }
    for f in &graph.fns {
        if f.in_test || f.concurrency.is_empty() {
            continue;
        }
        if DESIGNATED_CONCURRENCY_FILES.contains(&f.file.as_str()) {
            continue;
        }
        let tokens: Vec<&str> = f.concurrency.iter().map(|c| c.what.as_str()).collect();
        findings.push(Finding {
            rule: RuleId::C1PoolDiscipline,
            file: f.file.clone(),
            line: f.concurrency[0].line,
            col: 1,
            message: format!(
                "concurrency primitive(s) {} in `{}`: threading lives only in \
                 analytics::pool and analytics::parallel so the deterministic \
                 merge contract stays in one audited place",
                tokens.join("/"),
                f.qual
            ),
            chain: Vec::new(),
        });
    }
    // Merge paths reachable from PooledEngine must be taint-clean.
    let mut engine_roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test && f.qual.contains("::PooledEngine::"))
        .map(|(i, _)| i)
        .collect();
    engine_roots.sort_unstable();
    for root in engine_roots {
        if let Some(f) = taint_walk(
            graph,
            root,
            RuleId::C1PoolDiscipline,
            "PooledEngine merge path ",
        ) {
            findings.push(f);
        }
    }
}

/// u1-dead-pub: pub items with zero workspace references.
fn check_u1(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let refcount = |name: &str| graph.refs.get(name).copied().unwrap_or(0);
    for f in &graph.fns {
        if !f.is_pub || f.in_test || f.name == "main" {
            continue;
        }
        if refcount(&f.name) == 0 {
            findings.push(Finding {
                rule: RuleId::U1DeadPub,
                file: f.file.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "pub fn `{}` is referenced nowhere in the workspace (no bin, \
                     test, or facade path reaches it) — delete it or pin it with a test",
                    f.qual
                ),
                chain: Vec::new(),
            });
        }
    }
    for t in &graph.types {
        if !t.is_pub || t.in_test {
            continue;
        }
        if refcount(&t.name) == 0 {
            findings.push(Finding {
                rule: RuleId::U1DeadPub,
                file: t.file.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "pub {} `{}` is referenced nowhere in the workspace — delete it \
                     or pin it with a test",
                    t.kind.keyword(),
                    t.qual
                ),
                chain: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::parser::{parse_source, ParsedFile};
    use crate::rules::{FileMeta, FileRole};

    fn build(files: &[(&str, &str, &str)]) -> CallGraph {
        let parsed: Vec<(String, FileMeta, ParsedFile)> = files
            .iter()
            .map(|(rel, crate_name, src)| {
                (
                    (*rel).to_string(),
                    FileMeta {
                        crate_name: (*crate_name).to_string(),
                        role: FileRole::Src,
                        is_crate_root: false,
                    },
                    parse_source(src, rel),
                )
            })
            .collect();
        CallGraph::build(&parsed)
    }

    #[test]
    fn d4_reports_a_transitive_chain_to_the_source() {
        let g = build(&[
            (
                "crates/obs/src/export.rs",
                "obs",
                "pub fn fnv1a_lines(_l: &[&str]) -> u64 { 0 }\n",
            ),
            (
                "crates/analytics/src/rep.rs",
                "analytics",
                "use tagwatch_obs::fnv1a_lines;\n\
                 pub fn report() -> u64 { let _ = stamp(); fnv1a_lines(&[\"x\"]) }\n\
                 fn stamp() -> u64 { middle() }\n\
                 fn middle() -> u64 { let _t = std::time::Instant::now(); 7 }\n",
            ),
        ]);
        let findings = check(&g);
        let d4: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == RuleId::D4DigestTaint)
            .collect();
        assert_eq!(d4.len(), 1, "{findings:?}");
        let f = d4[0];
        assert_eq!(f.file, "crates/analytics/src/rep.rs");
        assert_eq!(
            f.chain,
            [
                "analytics::rep::report".to_string(),
                "analytics::rep::stamp".to_string(),
                "analytics::rep::middle [Instant::now at crates/analytics/src/rep.rs:4]"
                    .to_string(),
            ]
        );
    }

    #[test]
    fn d4_is_quiet_on_a_pure_sink() {
        let g = build(&[(
            "crates/obs/src/export.rs",
            "obs",
            "pub fn fnv1a_lines(_l: &[&str]) -> u64 { 0 }\n\
             pub fn digest_all() -> u64 { fnv1a_lines(&[\"a\"]) }\n",
        )]);
        assert!(check(&g).iter().all(|f| f.rule != RuleId::D4DigestTaint));
    }

    #[test]
    fn c1_flags_static_mut_and_stray_primitives() {
        let g = build(&[(
            "crates/sim/src/bad.rs",
            "sim",
            "static mut COUNTER: u64 = 0;\n\
             pub fn fan_out() { let (_tx, _rx) = std::sync::mpsc::channel::<u32>(); }\n",
        )]);
        let findings = check(&g);
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::C1PoolDiscipline && f.message.contains("static mut")));
        assert!(findings
            .iter()
            .any(|f| f.rule == RuleId::C1PoolDiscipline && f.message.contains("mpsc")));
    }

    #[test]
    fn c1_permits_primitives_in_the_designated_modules() {
        let g = build(&[(
            "crates/analytics/src/pool.rs",
            "analytics",
            "pub fn topology() { let (_tx, _rx) = std::sync::mpsc::channel::<u32>(); }\n",
        )]);
        assert!(check(&g).iter().all(|f| f.rule != RuleId::C1PoolDiscipline));
    }

    #[test]
    fn u1_flags_unreferenced_pub_items_only() {
        let g = build(&[(
            "crates/core/src/api.rs",
            "core",
            "pub fn orphan() {}\npub fn used() {}\nfn caller() { used(); }\n",
        )]);
        let findings = check(&g);
        let dead: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == RuleId::U1DeadPub)
            .collect();
        assert_eq!(dead.len(), 1, "{dead:?}");
        assert!(dead[0].message.contains("core::api::orphan"));
    }
}
