//! A small hand-rolled Rust lexer.
//!
//! The analyzer needs exactly one guarantee from its front end: a
//! token stream in which **source text inside comments, string
//! literals, raw strings, and char literals can never be mistaken for
//! code**. Everything the rule engine matches on — `unwrap`, `unsafe`,
//! `HashMap`, `#[cfg(test)]` — is an identifier or punctuation token,
//! so a pattern name appearing in a doc comment or a format string is
//! invisible to the rules by construction.
//!
//! The lexer is deliberately not a full Rust grammar: it has no notion
//! of expressions or items, just enough lexical structure (nested
//! block comments, raw strings with `#` fences, byte strings,
//! lifetime-vs-char disambiguation, raw identifiers) to segment real
//! workspace sources without mis-bracketing. Numbers and punctuation
//! are kept as single tokens; multi-char operators are left as
//! individual punct tokens because no rule needs them joined.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms, with
    /// the `r#` prefix included in the span).
    Ident,
    /// A lifetime such as `'a` (leading quote included).
    Lifetime,
    /// A numeric literal (suffixes included).
    Number,
    /// A `"…"` or `b"…"` string literal, delimiters included.
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`, …).
    RawStr,
    /// A `'…'` or `b'…'` char/byte literal.
    Char,
    /// A `// …` line comment (doc comments included).
    LineComment,
    /// A `/* … */` block comment, nesting handled (doc forms included).
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One lexed token: kind plus byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    #[must_use]
    pub fn is_doc_comment(&self, src: &str) -> bool {
        let t = self.text(src);
        match self.kind {
            // `////…` dividers are ordinary comments, not docs.
            TokenKind::LineComment => {
                (t.starts_with("///") && !t.starts_with("////")) || t.starts_with("//!")
            }
            TokenKind::BlockComment => t.starts_with("/**") || t.starts_with("/*!"),
            _ => false,
        }
    }

    /// Whether this is any kind of comment.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tracks line/column while the scanners below advance byte-wise.
struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a [u8]) -> Self {
        Cursor {
            src,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    /// Advances one byte, maintaining line/col.
    fn bump(&mut self) {
        if self.src.get(self.i) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lexes `src` into tokens. Whitespace is dropped; comments are kept
/// (the rule engine reads `lint:allow` escapes and doc comments out of
/// them). The lexer never fails: unterminated literals simply extend
/// to end of input, which is the safe direction for an analyzer (text
/// after a broken literal is *not* treated as code).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut cur = Cursor::new(bytes);
    let mut tokens = Vec::new();

    while let Some(c) = cur.peek(0) {
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.i, cur.line, cur.col);
        let kind = if c == b'/' && cur.peek(1) == Some(b'/') {
            scan_line_comment(&mut cur)
        } else if c == b'/' && cur.peek(1) == Some(b'*') {
            scan_block_comment(&mut cur)
        } else if let Some(kind) = try_scan_string_family(&mut cur) {
            kind
        } else if c == b'\'' {
            scan_quote(&mut cur)
        } else if is_ident_start(c) {
            scan_ident(&mut cur)
        } else if c.is_ascii_digit() {
            scan_number(&mut cur)
        } else {
            cur.bump();
            TokenKind::Punct
        };
        tokens.push(Token {
            kind,
            start,
            end: cur.i,
            line,
            col,
        });
    }
    tokens
}

fn scan_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    while let Some(b) = cur.peek(0) {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment
}

fn scan_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump_n(2); // `/*`
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            (Some(_), _) => cur.bump(),
            (None, _) => break, // unterminated: extend to EOF
        }
    }
    TokenKind::BlockComment
}

/// Handles every `"`-delimited form plus the `r`/`b` prefixes that
/// change lexing: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`, and
/// the byte-char `b'…'`. Returns `None` when the cursor is not at one
/// of these (e.g. `r` starting a plain identifier).
fn try_scan_string_family(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let c = cur.peek(0)?;
    if c == b'"' {
        scan_string(cur);
        return Some(TokenKind::Str);
    }
    if !(c == b'r' || c == b'b') {
        return None;
    }
    // Work out the prefix shape without consuming.
    let mut j = 1; // bytes of prefix beyond the first
    let mut raw = c == b'r';
    if c == b'b' {
        match cur.peek(1) {
            Some(b'r') => {
                raw = true;
                j = 2;
            }
            Some(b'\'') => {
                // `b'x'`: byte literal, same scan as a char.
                cur.bump(); // `b`
                scan_quote(cur);
                return Some(TokenKind::Char);
            }
            _ => {}
        }
    }
    if raw {
        // `r`/`br` then zero or more `#` then `"`.
        let mut hashes = 0;
        while cur.peek(j + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek(j + hashes) == Some(b'"') {
            cur.bump_n(j + hashes + 1);
            scan_raw_string_body(cur, hashes);
            return Some(TokenKind::RawStr);
        }
        return None; // raw identifier (`r#ident`) or plain ident
    }
    if c == b'b' && cur.peek(1) == Some(b'"') {
        cur.bump(); // `b`
        scan_string(cur);
        return Some(TokenKind::Str);
    }
    None
}

fn scan_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening `"`
    while let Some(b) = cur.peek(0) {
        match b {
            b'\\' => cur.bump_n(2),
            b'"' => {
                cur.bump();
                return;
            }
            _ => cur.bump(),
        }
    }
}

fn scan_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(b) = cur.peek(0) {
        if b == b'"' {
            let mut matched = 0;
            while matched < hashes && cur.peek(1 + matched) == Some(b'#') {
                matched += 1;
            }
            if matched == hashes {
                cur.bump_n(1 + hashes);
                return;
            }
        }
        cur.bump();
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
fn scan_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // `'`
    match (cur.peek(0), cur.peek(1)) {
        // `'ident` not closed by a quote → lifetime (covers `'_`).
        (Some(n), after) if is_ident_start(n) && after != Some(b'\'') => {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Lifetime
        }
        _ => {
            // Char literal: consume to the closing quote, escapes opaque.
            while let Some(b) = cur.peek(0) {
                match b {
                    b'\\' => cur.bump_n(2),
                    b'\'' => {
                        cur.bump();
                        break;
                    }
                    _ => cur.bump(),
                }
            }
            TokenKind::Char
        }
    }
}

fn scan_ident(cur: &mut Cursor<'_>) -> TokenKind {
    // `r#ident` raw identifiers arrive here when the `#` is not
    // followed by a raw-string quote; fold the prefix into the ident.
    if cur.peek(0) == Some(b'r')
        && cur.peek(1) == Some(b'#')
        && cur.peek(2).is_some_and(is_ident_start)
    {
        cur.bump_n(2);
    }
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::Ident
}

fn scan_number(cur: &mut Cursor<'_>) -> TokenKind {
    // Digits, underscores, radix/suffix letters; a `.` only when it is
    // followed by a digit (so `0..10` leaves the range operator alone).
    while let Some(b) = cur.peek(0) {
        let in_number =
            is_ident_continue(b) || (b == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()));
        if !in_number {
            break;
        }
        cur.bump();
    }
    TokenKind::Number
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = foo.unwrap();");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "foo", ".", "unwrap", "(", ")", ";"]
        );
        assert_eq!(ks[5].0, TokenKind::Ident);
    }

    #[test]
    fn string_contents_are_not_code() {
        let ks = kinds(r#"let s = "a.unwrap() /* x */";"#);
        assert!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count() == 1);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let src = r#"x("\"unsafe\"") y"#;
        let ks = kinds(src);
        let strs: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r#""\"unsafe\"""#]);
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"contains "quotes" and unwrap()"#; done"###;
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::RawStr));
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("a /* outer /* inner */ still comment */ b");
        let idents: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
        assert_eq!(
            ks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw"#;"##);
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let ks = kinds("let r#fn = 1; r#type");
        let idents: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(idents.contains(&"r#fn"));
        assert!(idents.contains(&"r#type"));
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\n  bb\n\tccc";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 2));
    }

    #[test]
    fn doc_comment_detection() {
        let src = "/// doc\n//! inner\n// plain\n//// divider\n/** block */\n/* plain */";
        let toks = lex(src);
        let docs: Vec<bool> = toks.iter().map(|t| t.is_doc_comment(src)).collect();
        assert_eq!(docs, [true, true, false, false, true, false]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let ks = kinds("for i in 0..10 { let x = 1.5e3; let h = 0xff_u8; }");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e3", "0xff_u8"]);
    }

    #[test]
    fn unterminated_string_extends_to_eof() {
        let ks = kinds("let s = \"never closed... unsafe unwrap");
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "unsafe" || t == "unwrap")));
    }
}
