//! Findings output: rustc-style human diagnostics and the
//! deterministic, FNV-digested JSON report CI archives.
//!
//! The JSON writer follows the same discipline as every other export
//! in the workspace (see `tagwatch_obs::export`): hand-rolled, fixed
//! field order, a trailing `fnv64:` digest over the preceding lines —
//! so two runs over the same tree produce byte-identical reports and
//! a findings diff is a digest diff.

use tagwatch_obs::{fnv1a_lines, json_escape};

use crate::rules::{AllowRecord, Finding, RuleId};

/// The complete result of a workspace analysis.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// All valid `lint:allow` escapes encountered.
    pub allows: Vec<AllowRecord>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether the tree is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Rustc-style diagnostics, one block per finding. Call-graph
    /// findings render their sink→source chain as `note:` lines.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}:{}\n",
                f.rule.name(),
                f.message,
                f.file,
                f.line,
                f.col
            ));
            for (i, hop) in f.chain.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("  note: call chain: {hop}\n"));
                } else {
                    out.push_str(&format!("  note:   -> {hop}\n"));
                }
            }
        }
        out
    }

    /// One-line summary for the terminal.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "tagwatch-lint: {} finding(s), {} allow(s) across {} files (digest fnv64:{:016x})",
            self.findings.len(),
            self.allows.len(),
            self.files_scanned,
            self.digest()
        )
    }

    /// FNV-1a digest over the report body (everything above the digest
    /// line of [`Analysis::to_json`]).
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a_lines(self.body_lines())
    }

    /// The deterministic JSON report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        for line in self.body_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!(
            "  \"digest\": \"fnv64:{:016x}\"\n}}\n",
            self.digest()
        ));
        out
    }

    /// Report body lines: everything above (and hashed into) the
    /// digest. The trailing comma after `allows` is load-bearing —
    /// the digest line follows.
    fn body_lines(&self) -> Vec<String> {
        let mut lines = vec![
            "{".to_string(),
            "  \"schema\": \"tagwatch-lint/v2\",".to_string(),
            format!("  \"files_scanned\": {},", self.files_scanned),
            "  \"rules\": [".to_string(),
        ];
        for (i, rule) in RuleId::ALL.iter().enumerate() {
            let comma = if i + 1 < RuleId::ALL.len() { "," } else { "" };
            lines.push(format!(
                "    {{\"id\": \"{}\", \"summary\": \"{}\"}}{comma}",
                rule.name(),
                json_escape(rule.summary())
            ));
        }
        lines.push("  ],".to_string());
        lines.push("  \"findings\": [".to_string());
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let chain = if f.chain.is_empty() {
                String::new()
            } else {
                let hops: Vec<String> = f
                    .chain
                    .iter()
                    .map(|h| format!("\"{}\"", json_escape(h)))
                    .collect();
                format!(", \"chain\": [{}]", hops.join(", "))
            };
            lines.push(format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"{chain}}}{comma}",
                f.rule.name(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            ));
        }
        lines.push("  ],".to_string());
        lines.push("  \"allows\": [".to_string());
        for (i, a) in self.allows.iter().enumerate() {
            let comma = if i + 1 < self.allows.len() { "," } else { "" };
            lines.push(format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{comma}",
                a.rule.name(),
                json_escape(&a.file),
                a.line,
                json_escape(&a.reason)
            ));
        }
        lines.push("  ],".to_string());
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule: RuleId::S2Panic,
                file: "crates/core/src/x.rs".to_string(),
                line: 3,
                col: 7,
                message: "`.unwrap(…)` in library code".to_string(),
                chain: Vec::new(),
            }],
            allows: vec![AllowRecord {
                rule: RuleId::D1Nondeterminism,
                file: "crates/sim/src/y.rs".to_string(),
                line: 10,
                reason: "lookup-only map".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn json_is_deterministic_and_digest_pinned_to_body() {
        let a = sample();
        let j1 = a.to_json();
        let j2 = a.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains(&format!("fnv64:{:016x}", a.digest())));
        // Any body change moves the digest.
        let mut b = sample();
        b.findings[0].line = 4;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn human_diagnostics_are_rustc_shaped() {
        let h = sample().human();
        assert!(h.contains("error[s2-panic]:"));
        assert!(h.contains("--> crates/core/src/x.rs:3:7"));
    }

    #[test]
    fn empty_analysis_is_clean() {
        let a = Analysis::default();
        assert!(a.is_clean());
        assert!(a.to_json().contains("\"findings\": ["));
    }
}
