//! Fig. 6 — frame sizes: TRP (Eq. 2) vs UTRP (Eq. 3 + pad), `c = 20`.
//!
//! Paper shape: UTRP needs somewhat more slots than TRP, but the
//! overhead is small — collusion resistance is cheap in slots.

#![forbid(unsafe_code)]

use tagwatch_analytics::{fig6, sparkline, Table};
use tagwatch_bench::{banner, sweep_from_args, OutputMode};

fn main() {
    let (config, mode) = sweep_from_args(std::env::args().skip(1));
    banner("Fig. 6", "frame sizes, TRP vs UTRP (c = 20)", &config);
    let rows = fig6(&config).expect("sweep grid rejected by core");

    if mode == OutputMode::Csv {
        let mut table = Table::new(["m", "n", "trp_slots", "utrp_slots"]);
        for r in &rows {
            table.push_row([
                r.m.to_string(),
                r.n.to_string(),
                r.trp_slots.to_string(),
                r.utrp_slots.to_string(),
            ]);
        }
        print!("{}", table.to_csv());
        return;
    }

    for &m in &config.m_values {
        println!("--- tolerate m = {m}, c = {} ---", config.sync_budget);
        let mut table = Table::new(["n", "TRP (slots)", "UTRP (slots)", "overhead"]);
        let panel: Vec<_> = rows.iter().filter(|r| r.m == m).collect();
        for r in &panel {
            table.push_row([
                r.n.to_string(),
                r.trp_slots.to_string(),
                r.utrp_slots.to_string(),
                format!("+{}", r.utrp_slots.saturating_sub(r.trp_slots)),
            ]);
        }
        print!("{}", table.to_text());
        println!(
            "trp {}  utrp {}",
            sparkline(&panel.iter().map(|r| r.trp_slots as f64).collect::<Vec<_>>()),
            sparkline(
                &panel
                    .iter()
                    .map(|r| r.utrp_slots as f64)
                    .collect::<Vec<_>>()
            ),
        );
        println!();
    }
}
