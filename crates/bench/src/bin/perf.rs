//! Round-engine throughput harness: the perf-regression companion to
//! the correctness suite.
//!
//! Measures rounds/sec, slots/sec, and ns/announcement for TRP and
//! UTRP rounds at n ∈ {10³, 10⁴, 10⁵, 10⁶}, with the UTRP round run
//! through **both** engines where tractable:
//!
//! * `soa` — the struct-of-arrays [`RoundScratch`] engine (the hot
//!   path everywhere since it landed), measured as a full round:
//!   load + scan + counter write-back, scratch reused across rounds;
//! * `legacy` — the original [`SubsetRound`] engine, driven exactly as
//!   the pre-refactor `simulate_round` drove it (participant clone in,
//!   copy-back out), kept for n ≤ 10⁵ (its per-announcement rescan
//!   makes million-tag rounds take minutes).
//!
//! Frames are capped at [`FRAME_CAP`] slots: paper-sized frames scale
//! with n, which at 10⁶ tags would make a single round O(n·f) ≈ 10¹¹
//! hash probes — the cap keeps the workload dense (n ≫ f, maximum
//! collision churn) and the per-n numbers comparable.
//!
//! A soak-tick probe times the full session stack (challenge sizing,
//! round, verify, mirror update) per tick, and a million-tag UTRP
//! round is run to completion as an acceptance gate — through both the
//! scalar engine and the persistent [`PooledEngine`].
//!
//! A pooled thread-sweep (the `"scaling"` section) re-runs the same
//! UTRP round through [`PooledEngine`] at increasing worker counts and
//! records per-count throughput plus a `parallel_speedup` check key
//! (best multi-thread rate over the single-thread pooled rate).
//! `--threads N` narrows the sweep to `{1, N}`. The absolute scaling
//! gates (million-tag pooled round < 500 ms, speedup ≥ 2.5×) are
//! **regime-aware**: they only arm when the machine reports ≥ 4
//! worker threads, and the regime is written into the baseline
//! (`"gates_enforced"`) so a single-core CI box records honest numbers
//! instead of failing on physics.
//!
//! Output goes to `BENCH_perf.json` (override with `--out PATH`). The
//! flat `"checks"` object mirrors the headline rates one-per-line so
//! the `--check` mode (and CI's perf-smoke job) can compare runs
//! without a JSON parser:
//!
//! ```text
//! cargo run --release -p tagwatch-bench --bin perf              # full grid
//! cargo run --release -p tagwatch-bench --bin perf -- --smoke   # n ≤ 10⁴, CI-sized
//! cargo run --release -p tagwatch-bench --bin perf -- \
//!     --smoke --check BENCH_perf.json --tolerance 0.30          # regression gate
//! ```
//!
//! `--check` exits non-zero if any shared check key regressed by more
//! than the tolerance (default 0.30) against the baseline file.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch_analytics::MonitoringSession;
use tagwatch_analytics::TickProtocol;
use tagwatch_analytics::{worker_threads, PooledEngine, POOL_THRESHOLD};
use tagwatch_core::trp::{self, TrpChallenge};
use tagwatch_core::utrp::{simulate_round_scratch, SubsetRound, UtrpChallenge, UtrpParticipant};
use tagwatch_core::{Bitstring, MonitorServer, RoundEngine, RoundScratch};
use tagwatch_obs::Obs;
use tagwatch_sim::{Counter, FrameSize, TagId, TimingModel};

/// Cap on benchmark frame sizes (see module docs).
const FRAME_CAP: u64 = 1024;

/// Minimum measured wall time per data point; reps adapt to reach it.
const TARGET_SECS: f64 = 0.3;

struct EngineStats {
    rounds: u64,
    elapsed_secs: f64,
    announcements: u64,
}

/// Pooled-engine stats per swept thread count: `(threads, stats)`.
type ThreadRows = Vec<(usize, EngineStats)>;

impl EngineStats {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.elapsed_secs
    }
    fn slots_per_sec(&self, f: u64) -> f64 {
        (self.rounds * f) as f64 / self.elapsed_secs
    }
    fn ns_per_announcement(&self) -> f64 {
        self.elapsed_secs * 1e9 / self.announcements as f64
    }
}

/// Benchmark population in the deployment steady state: all counters
/// equal (they start equal at registration and the protocol advances
/// them uniformly, so a synced fleet stays uniform forever). This is
/// the regime every soak tick and mirror prediction runs in, and the
/// one the SoA engine's uniform-key collapse targets.
fn participants(n: u64) -> Vec<UtrpParticipant> {
    (1..=n)
        .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
        .collect()
}

/// Population with scattered counters (a desynced or mid-recovery
/// fleet): forces the engine's general two-`mix64` path.
fn participants_mixed(n: u64) -> Vec<UtrpParticipant> {
    (1..=n)
        .map(|i| UtrpParticipant::new(TagId::from(i), Counter::new(i % 5)))
        .collect()
}

/// Runs `round` repeatedly until [`TARGET_SECS`] of wall time (at least
/// `min_rounds`), returning the aggregate. `round` returns the
/// announcement count of one round.
fn measure<F: FnMut() -> u64>(min_rounds: u64, mut round: F) -> EngineStats {
    let mut rounds = 0u64;
    let mut announcements = 0u64;
    let start = Instant::now();
    loop {
        announcements += round();
        rounds += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if rounds >= min_rounds && elapsed >= TARGET_SECS {
            return EngineStats {
                rounds,
                elapsed_secs: elapsed,
                announcements,
            };
        }
    }
}

/// One UTRP round through the SoA scratch engine, full cost: load,
/// scan, counter write-back.
fn soa_round(scratch: &mut RoundScratch, parts: &mut [UtrpParticipant], ch: &UtrpChallenge) -> u64 {
    simulate_round_scratch(scratch, parts, ch.frame_size(), ch.nonces())
        .expect("nonce sequence covers the frame")
}

/// [`soa_round`] through the telemetry entry point: identical work
/// plus the per-round `Obs` dispatch. With a disabled handle this must
/// cost one branch — the overhead probe holds it to ≤2%.
fn soa_round_observed(
    scratch: &mut RoundScratch,
    parts: &mut [UtrpParticipant],
    ch: &UtrpChallenge,
    obs: &Obs,
) -> u64 {
    scratch.load_participants(parts);
    let announcements = scratch
        .run_observed(ch.frame_size(), ch.nonces(), obs)
        .expect("nonce sequence covers the frame");
    for p in parts.iter_mut() {
        p.counter = Counter::new(p.counter.get().wrapping_add(announcements));
    }
    announcements
}

/// One UTRP round through the persistent sharded [`PooledEngine`]
/// (full cost: load dispatch, scan, counter write-back). At one thread
/// the engine *is* the scalar scratch; above [`POOL_THRESHOLD`]
/// actives the parked workers engage.
fn pooled_round(
    engine: &mut PooledEngine,
    parts: &mut [UtrpParticipant],
    ch: &UtrpChallenge,
) -> u64 {
    simulate_round_scratch(engine, parts, ch.frame_size(), ch.nonces())
        .expect("nonce sequence covers the frame")
}

/// One UTRP round through the legacy [`SubsetRound`] engine, driven as
/// the pre-refactor `simulate_round` drove it: clone in, announce /
/// min-scan / retire per reply, copy-back out.
fn legacy_round(parts: &mut [UtrpParticipant], ch: &UtrpChallenge) -> u64 {
    let f = ch.frame_size();
    let total = f.get();
    let mut bs = Bitstring::zeros(f.as_usize());
    let mut cursor = ch.nonces().cursor();

    let mut state = SubsetRound::new(parts.to_vec());
    state.announce(cursor.next_nonce().expect("frame-long sequence"), f);
    let mut subframe_start = 0u64;

    while let Some(rel) = state.next_reply_rel() {
        let global = subframe_start + rel;
        bs.set(global as usize, true).expect("global < frame");
        state.take_reply();
        let remaining = total - (global + 1);
        if remaining == 0 {
            break;
        }
        subframe_start = global + 1;
        let f_sub = FrameSize::new(remaining).expect("remaining > 0");
        state.announce(cursor.next_nonce().expect("frame-long sequence"), f_sub);
    }

    let (finished, announcements) = state.finish();
    parts.copy_from_slice(&finished);
    announcements
}

fn fmt_engine(out: &mut String, name: &str, s: &EngineStats, f: u64) {
    let _ = write!(
        out,
        // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, and {:.3} truncates jitter
        "        \"{name}\": {{\n          \"rounds\": {},\n          \"elapsed_ms\": {:.3},\n          \"rounds_per_sec\": {:.3},\n          \"slots_per_sec\": {:.1},\n          \"ns_per_announcement\": {:.2}\n        }}",
        s.rounds,
        s.elapsed_secs * 1e3,
        s.rounds_per_sec(),
        s.slots_per_sec(f),
        s.ns_per_announcement(),
    );
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_perf.json".to_owned();
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut requested_threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a baseline path")),
            "--threads" => {
                let t: usize = args
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("thread count must be an integer");
                requested_threads = Some(t.max(1));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("tolerance must be a number")
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    let baseline = check_path.as_deref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let sizes: &[u64] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    // Legacy rescans all n tags per announcement; at 10⁶ that's minutes
    // per round, so the comparison stops at 10⁵ (where the acceptance
    // criterion is checked).
    let legacy_max = 100_000u64;
    let timing = TimingModel::gen2();
    let mut checks: Vec<(String, f64)> = Vec::new();

    let mut utrp_json: Vec<String> = Vec::new();
    let mut trp_json: Vec<String> = Vec::new();

    for &n in sizes {
        let f_raw = (2 * n).min(FRAME_CAP);
        let f = FrameSize::new(f_raw).expect("positive frame");
        let mut rng = StdRng::seed_from_u64(7 + n);
        let ch = UtrpChallenge::generate(f, &timing, &mut rng);

        eprintln!("utrp n={n} f={f_raw}: soa...");
        let mut parts = participants(n);
        let mut scratch = RoundScratch::new();
        let soa = measure(1, || soa_round(&mut scratch, &mut parts, &ch));
        checks.push((
            format!("utrp_soa_rounds_per_sec_n{n}"),
            soa.rounds_per_sec(),
        ));

        eprintln!("utrp n={n} f={f_raw}: soa (mixed counters)...");
        let mut parts = participants_mixed(n);
        let soa_mixed = measure(1, || soa_round(&mut scratch, &mut parts, &ch));

        let legacy = if n <= legacy_max {
            eprintln!("utrp n={n} f={f_raw}: legacy...");
            let mut parts = participants(n);
            Some(measure(1, || legacy_round(&mut parts, &ch)))
        } else {
            None
        };

        let mut entry = String::new();
        let _ = write!(
            entry,
            "    {{\n      \"n\": {n},\n      \"frame\": {f_raw},\n      \"engines\": {{\n"
        );
        fmt_engine(&mut entry, "soa", &soa, f_raw);
        entry.push_str(",\n");
        fmt_engine(&mut entry, "soa_mixed_counters", &soa_mixed, f_raw);
        if let Some(l) = &legacy {
            entry.push_str(",\n");
            fmt_engine(&mut entry, "legacy", l, f_raw);
            let speedup = soa.rounds_per_sec() / l.rounds_per_sec();
            // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, not byte-wise
            let _ = write!(entry, ",\n        \"soa_speedup\": {speedup:.2}");
            eprintln!("utrp n={n}: soa/legacy speedup = {speedup:.1}x");
        }
        entry.push_str("\n      }\n    }");
        utrp_json.push(entry);

        // TRP: one frame, one linear pass — the n-scaling baseline.
        eprintln!("trp n={n} f={f_raw}...");
        let ids: Vec<TagId> = (1..=n).map(TagId::from).collect();
        let mut rng = StdRng::seed_from_u64(11 + n);
        let trp_ch = TrpChallenge::generate(f, &mut rng);
        let trp = measure(1, || {
            let bs = trp::observed_bitstring(&ids, &trp_ch);
            u64::from(bs.count_ones() > 0)
        });
        checks.push((format!("trp_rounds_per_sec_n{n}"), trp.rounds_per_sec()));
        let mut entry = String::new();
        let _ = write!(
            entry,
            // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, and {:.3} truncates jitter
            "    {{\n      \"n\": {n},\n      \"frame\": {f_raw},\n      \"rounds\": {},\n      \"elapsed_ms\": {:.3},\n      \"rounds_per_sec\": {:.3},\n      \"slots_per_sec\": {:.1}\n    }}",
            trp.rounds,
            trp.elapsed_secs * 1e3,
            trp.rounds_per_sec(),
            trp.slots_per_sec(f_raw),
        );
        trp_json.push(entry);
    }

    // Soak-tick probe: the full per-tick stack (Eq. 2/3 sizing, round,
    // verify, mirror update) through a real session.
    let soak_n = if smoke { 500u64 } else { 2_000 };
    let soak_ticks = if smoke { 20u64 } else { 50 };
    eprintln!("soak-tick probe: n={soak_n}, {soak_ticks} ticks...");
    let ids: Vec<TagId> = (1..=soak_n).map(TagId::from).collect();
    let server = MonitorServer::new(ids, 10, 0.95).expect("valid params");
    let mut session = MonitoringSession::builder(server)
        .protocol(TickProtocol::Utrp)
        .build();
    let mut floor = tagwatch_sim::TagPopulation::with_sequential_ids(soak_n as usize);
    let mut rng = StdRng::seed_from_u64(99);
    let start = Instant::now();
    for _ in 0..soak_ticks {
        session.tick(&mut floor, &mut rng).expect("intact tick");
    }
    let soak_elapsed = start.elapsed().as_secs_f64();
    let ticks_per_sec = soak_ticks as f64 / soak_elapsed;
    checks.push(("soak_ticks_per_sec".to_owned(), ticks_per_sec));

    // Disabled-telemetry overhead probe: the same n=10⁵ UTRP SoA round
    // through the plain entry point and the `run_observed` entry point
    // with `Obs::disabled()`. The disabled handle short-circuits before
    // any recording, so the observed path must stay within 2%. Each
    // iteration times one plain round and one observed round
    // back-to-back and records their ratio; the *median* ratio over
    // all iterations is the overhead estimate. Adjacent rounds share
    // machine state, so slow drift cancels inside each pair, and the
    // median discards the interference spikes that make per-variant
    // window averages (at ~90 ms/round) noisier than the 2% bound
    // being checked. The per-variant minimum round time still feeds
    // the throughput check key.
    let overhead_n = 100_000u64;
    eprintln!("telemetry overhead probe: n={overhead_n}...");
    let overhead_f = FrameSize::new((2 * overhead_n).min(FRAME_CAP)).expect("positive frame");
    let mut rng = StdRng::seed_from_u64(40_961 + overhead_n);
    let overhead_ch = UtrpChallenge::generate(overhead_f, &timing, &mut rng);
    let disabled = Obs::disabled();
    let mut parts_plain = participants(overhead_n);
    let mut parts_observed = participants(overhead_n);
    let mut scratch = RoundScratch::new();
    // Warm-up: touch both populations and fault in the scratch arrays.
    soa_round(&mut scratch, &mut parts_plain, &overhead_ch);
    soa_round_observed(&mut scratch, &mut parts_observed, &overhead_ch, &disabled);
    let mut plain_min = f64::INFINITY;
    let mut observed_min = f64::INFINITY;
    let mut ratios = Vec::with_capacity(30);
    for _ in 0..30 {
        let start = Instant::now();
        soa_round(&mut scratch, &mut parts_plain, &overhead_ch);
        let plain_secs = start.elapsed().as_secs_f64();
        plain_min = plain_min.min(plain_secs);
        let start = Instant::now();
        soa_round_observed(&mut scratch, &mut parts_observed, &overhead_ch, &disabled);
        let observed_secs = start.elapsed().as_secs_f64();
        observed_min = observed_min.min(observed_secs);
        ratios.push(observed_secs / plain_secs);
    }
    ratios.sort_by(f64::total_cmp);
    let overhead_frac = ratios[ratios.len() / 2] - 1.0;
    let plain_best = 1.0 / plain_min;
    let observed_best = 1.0 / observed_min;
    eprintln!(
        "telemetry overhead: plain {plain_best:.1} r/s, disabled-obs {observed_best:.1} r/s \
         ({:+.2}%)",
        overhead_frac * 100.0
    );
    checks.push((
        format!("utrp_soa_disabled_obs_rounds_per_sec_n{overhead_n}"),
        observed_best,
    ));

    // Span-recording cost probe: the same observed round against a
    // metrics-only registry and against a full registry with span
    // charging on (no tree is built here — the engine charges phases
    // to the rollup, which is the per-round cost a soak pays inside
    // its tick spans). Same pairwise-median design as above. This one
    // is informational: span recording is opt-in, so it gets a check
    // key for the tolerance compare but no same-run bound.
    eprintln!("span-recording overhead probe: n={overhead_n}...");
    let metrics_only_obs = Obs::metrics_only();
    let spans_probe_obs = Obs::new();
    let mut parts_metrics = participants(overhead_n);
    let mut parts_spans = participants(overhead_n);
    soa_round_observed(
        &mut scratch,
        &mut parts_metrics,
        &overhead_ch,
        &metrics_only_obs,
    );
    soa_round_observed(
        &mut scratch,
        &mut parts_spans,
        &overhead_ch,
        &spans_probe_obs,
    );
    let mut spans_min = f64::INFINITY;
    let mut span_ratios = Vec::with_capacity(30);
    for _ in 0..30 {
        let start = Instant::now();
        soa_round_observed(
            &mut scratch,
            &mut parts_metrics,
            &overhead_ch,
            &metrics_only_obs,
        );
        let metrics_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        soa_round_observed(
            &mut scratch,
            &mut parts_spans,
            &overhead_ch,
            &spans_probe_obs,
        );
        let spans_secs = start.elapsed().as_secs_f64();
        spans_min = spans_min.min(spans_secs);
        span_ratios.push(spans_secs / metrics_secs);
    }
    span_ratios.sort_by(f64::total_cmp);
    let span_overhead_frac = span_ratios[span_ratios.len() / 2] - 1.0;
    let spans_best = 1.0 / spans_min;
    eprintln!(
        "span recording: {spans_best:.1} r/s with spans on ({:+.2}% vs metrics-only)",
        span_overhead_frac * 100.0
    );
    checks.push((
        format!("utrp_soa_spans_obs_rounds_per_sec_n{overhead_n}"),
        spans_best,
    ));

    // Pooled-engine thread sweep: the same dense UTRP round through
    // the persistent sharded engine at increasing worker counts. A
    // determinism spot-check asserts the occupancy bitstring is
    // identical at every count before any timing is trusted. On a
    // single-core machine the sweep degenerates to {1} and the
    // absolute scaling gates stay disarmed (recorded in the baseline
    // as `"gates_enforced": false` so CI on a wider box re-arms them).
    let machine_threads = worker_threads();
    let sweep_sizes: &[u64] = if smoke {
        &[10_000]
    } else {
        // The smoke size stays in the full grid so a full baseline
        // carries every check key a CI smoke run will compare.
        &[10_000, 100_000]
    };
    let sweep_counts: Vec<usize> = match requested_threads {
        Some(t) => {
            let mut c = vec![1, t];
            c.dedup();
            c
        }
        None => {
            let mut c = vec![1usize];
            let mut t = 2;
            while t < machine_threads {
                c.push(t);
                t *= 2;
            }
            if machine_threads > 1 {
                c.push(machine_threads);
            }
            c
        }
    };
    // (n, frame, per-thread-count stats) per sweep size.
    let mut sweeps: Vec<(u64, u64, ThreadRows)> = Vec::new();
    for &sweep_n in sweep_sizes {
        let sweep_f_raw = (2 * sweep_n).min(FRAME_CAP);
        eprintln!("pooled scaling sweep: n={sweep_n} f={sweep_f_raw}, threads {sweep_counts:?}...");
        let sweep_f = FrameSize::new(sweep_f_raw).expect("positive frame");
        let mut rng = StdRng::seed_from_u64(20_011 + sweep_n);
        let sweep_ch = UtrpChallenge::generate(sweep_f, &timing, &mut rng);
        let mut rows: ThreadRows = Vec::new();
        let mut sweep_bits: Option<Bitstring> = None;
        for &t in &sweep_counts {
            let mut parts = participants(sweep_n);
            let mut engine = PooledEngine::new(t);
            // Warm-up round doubles as the determinism spot-check:
            // every thread count sees the same challenge and fresh
            // counters, so the first round's bitstring must be
            // byte-identical.
            pooled_round(&mut engine, &mut parts, &sweep_ch);
            let bits = engine.take_bitstring();
            match &sweep_bits {
                Some(prev) => assert_eq!(*prev, bits, "pooled scan must be thread-invariant"),
                None => sweep_bits = Some(bits),
            }
            let stats = measure(1, || pooled_round(&mut engine, &mut parts, &sweep_ch));
            eprintln!(
                "pooled n={sweep_n} t={t}: {:.1} rounds/sec",
                stats.rounds_per_sec()
            );
            checks.push((
                format!("pooled_rounds_per_sec_n{sweep_n}_t{t}"),
                stats.rounds_per_sec(),
            ));
            rows.push((t, stats));
        }
        sweeps.push((sweep_n, sweep_f_raw, rows));
    }
    // Speedup from the largest sweep: big rounds amortize dispatch,
    // so this is the number the scaling gate reasons about.
    let gate_rows = &sweeps.last().expect("at least one sweep size").2;
    let pooled_single = gate_rows[0].1.rounds_per_sec();
    let parallel_speedup = gate_rows
        .iter()
        .map(|(_, s)| s.rounds_per_sec())
        .fold(f64::MIN, f64::max)
        / pooled_single;
    checks.push(("parallel_speedup".to_owned(), parallel_speedup));
    // The absolute gates need the full-grid workload (n = 10⁵ sweep,
    // million-tag round): the smoke sweep's n = 10⁴ rounds are small
    // enough that dispatch overhead caps the speedup well below the
    // floor even on healthy hardware. Smoke runs still compare every
    // pooled check key against the baseline with the usual tolerance.
    let scaling_gates = machine_threads >= 4 && !smoke;

    // Million-tag acceptance round (full grid only): one UTRP round at
    // n = 10⁶ must complete through the SoA engine, and again through
    // the pooled engine at the machine's worker count (the < 500 ms
    // gate applies to the pooled time, when armed).
    let million = if smoke {
        None
    } else {
        eprintln!("million-tag acceptance round...");
        let n = 1_000_000u64;
        let f = FrameSize::new(FRAME_CAP).expect("positive frame");
        let mut rng = StdRng::seed_from_u64(1_000_003);
        let ch = UtrpChallenge::generate(f, &timing, &mut rng);
        let mut parts = participants(n);
        let mut scratch = RoundScratch::new();
        let start = Instant::now();
        let announcements = soa_round(&mut scratch, &mut parts, &ch);
        let elapsed = start.elapsed().as_secs_f64();
        let occupied = scratch.bitstring().count_ones();

        eprintln!("million-tag pooled round (t={machine_threads})...");
        let mut parts = participants(n);
        let mut engine = PooledEngine::new(machine_threads);
        // Warm round faults in the shard arrays; it sees the same
        // fresh counters as the scalar round above, so it doubles as
        // the determinism check. The timed round after it is the
        // steady-state cost a session would pay.
        pooled_round(&mut engine, &mut parts, &ch);
        assert_eq!(
            *engine.bitstring(),
            *scratch.bitstring(),
            "pooled million-tag round must match the scalar engine"
        );
        let start = Instant::now();
        pooled_round(&mut engine, &mut parts, &ch);
        let pooled_ms = start.elapsed().as_secs_f64() * 1e3;
        eprintln!("million-tag pooled round: {pooled_ms:.1} ms");

        // Span-attribution acceptance: the same million-tag round
        // through the span-charging entry point must attribute every
        // slot and probe the cost clock counted to a named phase —
        // the telescoping identity, at the largest workload the
        // harness runs (the acceptance floor is 95%; the identity
        // makes it exactly 100%).
        eprintln!("million-tag span attribution check...");
        let attr_obs = Obs::new();
        let mut parts = participants(n);
        soa_round_observed(&mut scratch, &mut parts, &ch, &attr_obs);
        let rollup = attr_obs.span_rollup();
        let scan_slots = rollup.phase(tagwatch_obs::Phase::MinScan).slots
            + rollup.phase(tagwatch_obs::Phase::ReSeed).slots;
        let slots_total = attr_obs.counter(attr_obs.m.slots_total);
        assert_eq!(
            scan_slots, slots_total,
            "span rollup must attribute every engine slot to a phase"
        );
        assert_eq!(
            rollup.probes(),
            attr_obs.counter(attr_obs.m.probes_total),
            "span rollup must attribute every probe to a phase"
        );
        eprintln!("span attribution: {scan_slots}/{slots_total} slots, 100%");

        Some((
            n,
            FRAME_CAP,
            announcements,
            occupied,
            elapsed * 1e3,
            pooled_ms,
        ))
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"tagwatch-perf-v1\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"frame_cap\": {FRAME_CAP},");
    json.push_str("  \"utrp\": [\n");
    json.push_str(&utrp_json.join(",\n"));
    json.push_str("\n  ],\n  \"trp\": [\n");
    json.push_str(&trp_json.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = write!(
        json,
        // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, and {:.3} truncates jitter
        "  \"soak_tick\": {{\n    \"n\": {soak_n},\n    \"ticks\": {soak_ticks},\n    \"elapsed_ms\": {:.3},\n    \"ticks_per_sec\": {ticks_per_sec:.3}\n  }},\n",
        soak_elapsed * 1e3
    );
    let _ = write!(
        json,
        // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, not byte-wise
        "  \"telemetry_overhead\": {{\n    \"n\": {overhead_n},\n    \"plain_rounds_per_sec\": {plain_best:.3},\n    \"disabled_obs_rounds_per_sec\": {observed_best:.3},\n    \"overhead_fraction\": {overhead_frac:.5},\n    \"spans_obs_rounds_per_sec\": {spans_best:.3},\n    \"span_overhead_fraction\": {span_overhead_frac:.5}\n  }},\n"
    );
    let _ = write!(
        json,
        "  \"scaling\": {{\n    \"machine_threads\": {machine_threads},\n    \"pool_threshold\": {POOL_THRESHOLD},\n    \"gates_enforced\": {scaling_gates},\n    \"sweeps\": [\n"
    );
    let sweep_blocks: Vec<String> = sweeps
        .iter()
        .map(|(n, f_raw, rows)| {
            let lines: Vec<String> = rows
                .iter()
                .map(|(t, s)| {
                    format!(
                        // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, not byte-wise
                        "          {{ \"threads\": {t}, \"rounds\": {}, \"elapsed_ms\": {:.3}, \"rounds_per_sec\": {:.3} }}",
                        s.rounds,
                        s.elapsed_secs * 1e3,
                        s.rounds_per_sec(),
                    )
                })
                .collect();
            format!(
                "      {{\n        \"n\": {n},\n        \"frame\": {f_raw},\n        \"threads\": [\n{}\n        ]\n      }}",
                lines.join(",\n")
            )
        })
        .collect();
    json.push_str(&sweep_blocks.join(",\n"));
    let _ = write!(
        json,
        // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, not byte-wise
        "\n    ],\n    \"parallel_speedup\": {parallel_speedup:.3}\n  }},\n"
    );
    if let Some((n, f, announcements, occupied, ms, pooled_ms)) = million {
        let _ = write!(
            json,
            // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, not byte-wise
            "  \"million_tag_round\": {{\n    \"n\": {n},\n    \"frame\": {f},\n    \"announcements\": {announcements},\n    \"occupied_slots\": {occupied},\n    \"elapsed_ms\": {ms:.1},\n    \"pooled_threads\": {machine_threads},\n    \"pooled_elapsed_ms\": {pooled_ms:.1}\n  }},\n"
        );
    }
    json.push_str("  \"checks\": {\n");
    let check_lines: Vec<String> = checks
        .iter()
        // lint:allow(d2-float-format): timing floats are machine-varying; the perf baseline is compared numerically with tolerance, not byte-wise
        .map(|(k, v)| format!("    \"{k}\": {v:.3}"))
        .collect();
    json.push_str(&check_lines.join(",\n"));
    json.push_str("\n  }\n}\n");

    std::fs::write(&out_path, &json).expect("write perf report");
    eprintln!("wrote {out_path}");

    // Regression gate: every check key present in both runs must not
    // have dropped by more than the tolerance. The telemetry-overhead
    // bound is same-run (no baseline needed) but only enforced in
    // check mode so exploratory runs never fail on it.
    if let Some(base) = baseline {
        let mut regressed = false;
        const OVERHEAD_BOUND: f64 = 0.02;
        if overhead_frac > OVERHEAD_BOUND {
            eprintln!(
                "REGRESSION telemetry_overhead: disabled-obs round {:.2}% slower than plain \
                 (bound {:.0}%)",
                overhead_frac * 100.0,
                OVERHEAD_BOUND * 100.0
            );
            regressed = true;
        } else {
            eprintln!(
                "ok telemetry_overhead: {:+.2}% (bound {:.0}%)",
                overhead_frac * 100.0,
                OVERHEAD_BOUND * 100.0
            );
        }
        // Absolute scaling gates — armed only in the multi-core
        // regime (see module docs). The speedup floor compares the
        // best sweep rate against the single-thread pooled engine;
        // the wall-clock gate is the pooled million-tag round.
        if scaling_gates {
            const SPEEDUP_FLOOR: f64 = 2.5;
            const MILLION_MS_CEILING: f64 = 500.0;
            if parallel_speedup < SPEEDUP_FLOOR {
                eprintln!(
                    "REGRESSION parallel_speedup: {parallel_speedup:.2}x < {SPEEDUP_FLOOR}x \
                     at {machine_threads} threads"
                );
                regressed = true;
            } else {
                eprintln!("ok parallel_speedup: {parallel_speedup:.2}x (floor {SPEEDUP_FLOOR}x)");
            }
            if let Some((.., pooled_ms)) = million {
                if pooled_ms > MILLION_MS_CEILING {
                    eprintln!(
                        "REGRESSION million_tag_pooled: {pooled_ms:.1} ms > \
                         {MILLION_MS_CEILING} ms ceiling"
                    );
                    regressed = true;
                } else {
                    eprintln!(
                        "ok million_tag_pooled: {pooled_ms:.1} ms (ceiling {MILLION_MS_CEILING} ms)"
                    );
                }
            }
        } else {
            eprintln!(
                "scaling gates: disarmed (machine_threads = {machine_threads} < 4, \
                 single-core regime)"
            );
        }
        for (key, current) in &checks {
            let needle = format!("\"{key}\":");
            let Some(pos) = base.find(&needle) else {
                eprintln!("check {key}: not in baseline, skipping");
                continue;
            };
            let rest = &base[pos + needle.len()..];
            let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
            let prior: f64 = rest[..end].trim().parse().expect("numeric baseline value");
            let floor = prior * (1.0 - tolerance);
            if *current < floor {
                eprintln!(
                    "REGRESSION {key}: {current:.3} < {floor:.3} (baseline {prior:.3}, tolerance {tolerance})"
                );
                regressed = true;
            } else {
                eprintln!("ok {key}: {current:.3} vs baseline {prior:.3}");
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}
