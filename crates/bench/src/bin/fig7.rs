//! Fig. 7 — UTRP accuracy against the best-strategy colluders
//! (`c = 20`), with `f` from Eq. 3 (+ pad) and `α = 0.95`.
//!
//! Paper shape: detection probability stays above the `α = 0.95` line
//! on every panel.

#![forbid(unsafe_code)]

use tagwatch_analytics::{fig7, sparkline, Table};
use tagwatch_bench::{banner, sweep_from_args, OutputMode};

fn main() {
    let (config, mode) = sweep_from_args(std::env::args().skip(1));
    banner(
        "Fig. 7",
        "UTRP detection probability vs colluding readers",
        &config,
    );
    let rows = fig7(&config).expect("sweep grid rejected by core");

    if mode == OutputMode::Csv {
        let mut table = Table::new(["m", "n", "frame", "detected", "trials", "rate"]);
        for r in &rows {
            table.push_row([
                r.m.to_string(),
                r.n.to_string(),
                r.frame.to_string(),
                r.detection.successes.to_string(),
                r.detection.trials.to_string(),
                format!("{:.4}", r.detection.rate()),
            ]);
        }
        print!("{}", table.to_csv());
        return;
    }

    for &m in &config.m_values {
        println!(
            "--- tolerate m = {m}, colluders steal m+1 = {}, c = {} ---",
            m + 1,
            config.sync_budget
        );
        let mut table = Table::new(["n", "frame f", "detection rate", "95% CI", ">= alpha?"]);
        let panel: Vec<_> = rows.iter().filter(|r| r.m == m).collect();
        for r in &panel {
            let (lo, hi) = r.detection.wilson_interval(1.96);
            table.push_row([
                r.n.to_string(),
                r.frame.to_string(),
                format!("{:.4}", r.detection.rate()),
                format!("[{lo:.3}, {hi:.3}]"),
                if r.detection.rate() >= config.alpha {
                    "yes"
                } else {
                    "(below)"
                }
                .to_owned(),
            ]);
        }
        print!("{}", table.to_text());
        println!(
            "rate {}  (alpha = {})",
            sparkline(&panel.iter().map(|r| r.detection.rate()).collect::<Vec<_>>()),
            config.alpha
        );
        println!();
    }
}
