//! Supplementary ablations (not figures from the paper, but design
//! choices its text argues for):
//!
//! * **safety pad** — the "+5–10 slots" the paper adds on top of the
//!   Eq. 3 minimum (because Theorem 3's horizon is an expectation):
//!   measured detection with pads 0/4/8/16;
//! * **attacker budget** — the frame is sized for `c = 20`; how does
//!   detection degrade if the real colluders afford more syncs than the
//!   deadline model assumed?

#![forbid(unsafe_code)]

use tagwatch_analytics::{budget_sweep, pad_ablation, Table};
use tagwatch_bench::{banner, sweep_from_args, OutputMode};

fn main() {
    let (mut config, mode) = sweep_from_args(std::env::args().skip(1));
    // Ablations fix m = 10 and need fewer n points than the figures.
    config.n_values.retain(|&n| n % 500 == 0 || n == 100);
    banner(
        "Ablations",
        "safety pad and attacker budget (m = 10)",
        &config,
    );

    let pad_rows = pad_ablation(&config).expect("sweep grid rejected by core");
    let budget_rows = budget_sweep(&config).expect("sweep grid rejected by core");

    if mode == OutputMode::Csv {
        let mut t = Table::new(["experiment", "knob", "n", "frame", "rate"]);
        for r in &pad_rows {
            t.push_row([
                "pad".to_owned(),
                r.pad.to_string(),
                r.n.to_string(),
                r.frame.to_string(),
                format!("{:.4}", r.detection.rate()),
            ]);
        }
        for r in &budget_rows {
            t.push_row([
                "budget".to_owned(),
                r.attacker_budget.to_string(),
                r.n.to_string(),
                r.frame.to_string(),
                format!("{:.4}", r.detection.rate()),
            ]);
        }
        print!("{}", t.to_csv());
        return;
    }

    println!("--- safety pad on the Eq. 3 frame (design c = 20) ---");
    let mut t = Table::new(["pad", "n", "frame", "detection rate"]);
    for r in &pad_rows {
        t.push_row([
            format!("+{}", r.pad),
            r.n.to_string(),
            r.frame.to_string(),
            format!("{:.4}", r.detection.rate()),
        ]);
    }
    print!("{}", t.to_text());
    println!();

    println!("--- attacker budget vs a frame sized for c = 20 ---");
    let mut t = Table::new(["attacker c", "n", "frame", "detection rate"]);
    for r in &budget_rows {
        t.push_row([
            r.attacker_budget.to_string(),
            r.n.to_string(),
            r.frame.to_string(),
            format!("{:.4}", r.detection.rate()),
        ]);
    }
    print!("{}", t.to_text());
}
