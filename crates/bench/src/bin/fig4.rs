//! Fig. 4 — scanning cost: collect-all vs TRP, four tolerance panels.
//!
//! Paper shape: both curves grow linearly in `n`; TRP sits below
//! collect-all everywhere, and the gap widens with `n` and with `m`.

#![forbid(unsafe_code)]

use tagwatch_analytics::{fig4, fig4_time, sparkline, Table};
use tagwatch_bench::{banner, sweep_from_args, OutputMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, mode) = sweep_from_args(args.iter().cloned());

    // `--time` prints the Gen2 air-time companion instead of slots
    // (the paper's footnote that collect-all slots carry 96-bit IDs).
    if args.iter().any(|a| a == "--time") {
        banner(
            "Fig. 4 (time domain)",
            "air time, collect-all vs TRP",
            &config,
        );
        let rows = fig4_time(&config).expect("sweep grid rejected by core");
        for &m in &config.m_values {
            println!("--- tolerate m = {m} missing tags ---");
            let mut table = Table::new(["n", "collect all (ms)", "TRP (ms)", "TRP/collect"]);
            for r in rows.iter().filter(|r| r.m == m) {
                table.push_row([
                    r.n.to_string(),
                    format!("{:.1}", r.collect_all_micros.mean / 1e3),
                    format!("{:.1}", r.trp_micros as f64 / 1e3),
                    format!("{:.3}", r.trp_micros as f64 / r.collect_all_micros.mean),
                ]);
            }
            print!("{}", table.to_text());
            println!();
        }
        return;
    }

    banner("Fig. 4", "number of slots, collect-all vs TRP", &config);
    let rows = fig4(&config).expect("sweep grid rejected by core");

    if mode == OutputMode::Csv {
        let mut table = Table::new(["m", "n", "collect_all_slots", "trp_slots"]);
        for r in &rows {
            table.push_row([
                r.m.to_string(),
                r.n.to_string(),
                format!("{:.1}", r.collect_all_slots.mean),
                r.trp_slots.to_string(),
            ]);
        }
        print!("{}", table.to_csv());
        return;
    }

    for &m in &config.m_values {
        println!("--- tolerate m = {m} missing tags ---");
        let mut table = Table::new(["n", "collect all (slots)", "TRP (slots)", "TRP/collect"]);
        let panel: Vec<_> = rows.iter().filter(|r| r.m == m).collect();
        for r in &panel {
            table.push_row([
                r.n.to_string(),
                format!(
                    "{:.0} ± {:.0}",
                    r.collect_all_slots.mean,
                    r.collect_all_slots.std_err()
                ),
                r.trp_slots.to_string(),
                format!("{:.2}", r.trp_slots as f64 / r.collect_all_slots.mean),
            ]);
        }
        print!("{}", table.to_text());
        println!(
            "collect-all {}  trp {}",
            sparkline(
                &panel
                    .iter()
                    .map(|r| r.collect_all_slots.mean)
                    .collect::<Vec<_>>()
            ),
            sparkline(&panel.iter().map(|r| r.trp_slots as f64).collect::<Vec<_>>()),
        );
        println!();
    }
}
