//! # tagwatch-bench
//!
//! Figure-regeneration binaries and Criterion benchmarks for the
//! reproduction of Tan, Sheng & Li (ICDCS 2008).
//!
//! ## Binaries
//!
//! One binary per evaluation figure; each prints the figure's data as
//! aligned tables (one panel per tolerance `m`) plus CSV:
//!
//! ```text
//! cargo run --release -p tagwatch-bench --bin fig4   # collect-all vs TRP slots
//! cargo run --release -p tagwatch-bench --bin fig5   # TRP detection probability
//! cargo run --release -p tagwatch-bench --bin fig6   # TRP vs UTRP frame sizes
//! cargo run --release -p tagwatch-bench --bin fig7   # UTRP detection vs colluders
//! ```
//!
//! Flags/environment:
//! * `--quick` — reduced grid (4 population sizes, 100 trials);
//! * `--csv` — emit CSV instead of aligned tables;
//! * `TAGWATCH_TRIALS=N` — override the Monte-Carlo trial count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tagwatch_analytics::SweepConfig;

/// Parses the common binary flags into a sweep configuration.
///
/// `--quick` selects the reduced grid; otherwise the paper's full grid
/// runs. `TAGWATCH_TRIALS` overrides trial counts either way.
#[must_use]
pub fn sweep_from_args<I: IntoIterator<Item = String>>(args: I) -> (SweepConfig, OutputMode) {
    let mut quick = false;
    let mut mode = OutputMode::Table;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => mode = OutputMode::Csv,
            _ => {}
        }
    }
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };
    (config.with_env_overrides(), mode)
}

/// How a figure binary renders its rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Aligned terminal tables per tolerance panel.
    Table,
    /// One CSV block.
    Csv,
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, what: &str, config: &SweepConfig) {
    println!("=== {figure}: {what} ===");
    println!(
        "grid: n in {:?} (x{}), m in {:?}, alpha = {}, trials = {}, c = {}",
        (
            config.n_values.first().copied().unwrap_or(0),
            config.n_values.last().copied().unwrap_or(0)
        ),
        config.n_values.len(),
        config.m_values,
        config.alpha,
        config.trials,
        config.sync_budget,
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_select_paper_grid() {
        let (cfg, mode) = sweep_from_args(Vec::<String>::new());
        assert_eq!(cfg.n_values.len(), 20);
        assert_eq!(mode, OutputMode::Table);
    }

    #[test]
    fn quick_and_csv_flags_parse() {
        let (cfg, mode) = sweep_from_args(vec!["--quick".to_owned(), "--csv".to_owned()]);
        assert_eq!(cfg.n_values.len(), 4);
        assert_eq!(mode, OutputMode::Csv);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let (cfg, mode) = sweep_from_args(vec!["--frobnicate".to_owned()]);
        assert_eq!(cfg.n_values.len(), 20);
        assert_eq!(mode, OutputMode::Table);
    }
}
