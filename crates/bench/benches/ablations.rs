//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * fast sub-frame-skipping UTRP engine vs the slot-by-slot reference;
//! * PGF-collapsed Eq. 3 vs the literal triple sum;
//! * Poisson vs exact empty-slot models in the Eq. 2 search;
//! * DFSA frame policies (Lee-optimal vs fixed vs adaptive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use tagwatch_core::math::detection::EmptySlotModel;
use tagwatch_core::math::utrp::{utrp_detection_probability, utrp_detection_probability_reference};
use tagwatch_core::utrp::{
    simulate_round, simulate_round_reference, UtrpChallenge, UtrpParticipant,
};
use tagwatch_core::{trp_frame_size_with_model, MonitorParams};
use tagwatch_protocols::collect_all::{collect_all, CollectAllConfig, FramePolicy};
use tagwatch_sim::{
    Channel, Counter, FrameSize, Reader, ReaderConfig, TagId, TagPopulation, TimingModel,
};

fn parts(n: u64) -> Vec<UtrpParticipant> {
    (1..=n)
        .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
        .collect()
}

fn bench_round_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/utrp_round_engine");
    group.sample_size(10);
    let n = 500u64;
    let f = FrameSize::new(1000).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let ch = UtrpChallenge::generate(f, &TimingModel::gen2(), &mut rng);

    group.bench_function("fast_subframe_skipping", |b| {
        b.iter(|| {
            let mut p = parts(n);
            simulate_round(black_box(&mut p), f, ch.nonces()).unwrap()
        });
    });
    group.bench_function("reference_slot_by_slot", |b| {
        b.iter(|| {
            let mut p = parts(n);
            simulate_round_reference(black_box(&mut p), f, ch.nonces()).unwrap()
        });
    });
    group.finish();
}

fn bench_eq3_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/eq3_evaluation");
    group.sample_size(10);
    let (n, m, f, budget) = (400u64, 10u64, 700u64, 20u64);
    group.bench_function("pgf_collapsed", |b| {
        b.iter(|| utrp_detection_probability(black_box(n), m, f, budget, EmptySlotModel::Poisson));
    });
    group.bench_function("literal_triple_sum", |b| {
        b.iter(|| {
            utrp_detection_probability_reference(
                black_box(n),
                m,
                f,
                budget,
                EmptySlotModel::Poisson,
            )
        });
    });
    group.finish();
}

fn bench_empty_slot_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/empty_slot_model");
    for model in [EmptySlotModel::Poisson, EmptySlotModel::Exact] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{model:?}")),
            &model,
            |b, &model| {
                let params = MonitorParams::new(1000, 10, 0.95).unwrap();
                b.iter(|| trp_frame_size_with_model(black_box(&params), model).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_dfsa_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/dfsa_policy");
    group.sample_size(10);
    for (label, policy) in [
        ("lee_optimal", FramePolicy::LeeOptimal),
        ("fixed_128", FramePolicy::Fixed(128)),
        ("adaptive_16", FramePolicy::Adaptive(16)),
    ] {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut reader = Reader::new(ReaderConfig::default());
                let mut pop = TagPopulation::with_sequential_ids(500);
                collect_all(
                    &mut reader,
                    &mut pop,
                    &Channel::ideal(),
                    &CollectAllConfig {
                        expected_tags: 500,
                        tolerance: 0,
                        policy,
                        max_rounds: 100_000,
                    },
                    &mut rng,
                )
                .unwrap()
                .total_slots
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_engines,
    bench_eq3_forms,
    bench_empty_slot_models,
    bench_dfsa_policies
);
criterion_main!(benches);
