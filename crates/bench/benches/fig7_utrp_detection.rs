//! Criterion bench behind Fig. 7: one UTRP detection trial — the
//! best-strategy collusion attack plus the server's expected-round
//! recomputation — at the Eq. 3 frame size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tagwatch_analytics::utrp_detection_trial;
use tagwatch_core::{utrp_frame_size, MonitorParams, UtrpSizing};

fn bench_utrp_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/utrp_detection_trial");
    group.sample_size(10);
    for &(n, m) in &[(100u64, 5u64), (500, 10), (1000, 10)] {
        let params = MonitorParams::new(n, m, 0.95).unwrap();
        let f = utrp_frame_size(&params, UtrpSizing::default()).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    utrp_detection_trial(black_box(n), m, f, 20, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_utrp_trial);
criterion_main!(benches);
