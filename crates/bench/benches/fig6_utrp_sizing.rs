//! Criterion bench behind Fig. 6: Eq. 3 frame sizing (the UTRP curve),
//! the most numerically involved computation in the workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tagwatch_core::{utrp_frame_size, MonitorParams, UtrpSizing};

fn bench_utrp_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/utrp_frame_size");
    group.sample_size(20);
    for &(n, m) in &[(100u64, 5u64), (1000, 10), (2000, 30)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                let params = MonitorParams::new(n, m, 0.95).unwrap();
                b.iter(|| utrp_frame_size(black_box(&params), UtrpSizing::default()).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_utrp_sizing);
criterion_main!(benches);
