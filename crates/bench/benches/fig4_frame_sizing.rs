//! Criterion bench behind Fig. 4: the cost of producing each curve —
//! Eq. 2 frame sizing (TRP curve) and one collect-all inventory trial
//! (collect-all curve) — across the paper's tolerance panels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tagwatch_analytics::collect_all_slots_trial;
use tagwatch_core::{trp_frame_size, MonitorParams};

fn bench_trp_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/trp_frame_size");
    for &(n, m) in &[(100u64, 5u64), (1000, 10), (2000, 30)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                let params = MonitorParams::new(n, m, 0.95).unwrap();
                b.iter(|| trp_frame_size(black_box(&params)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_collect_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/collect_all_trial");
    group.sample_size(20);
    for &n in &[100u64, 1000, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                collect_all_slots_trial(black_box(n), 5, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trp_sizing, bench_collect_all);
criterion_main!(benches);
