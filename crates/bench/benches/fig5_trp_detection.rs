//! Criterion bench behind Fig. 5: one TRP detection trial (steal
//! `m + 1`, scan, verify) at the Eq. 2 frame size, across population
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tagwatch_analytics::trp_detection_trial;
use tagwatch_core::{trp_frame_size, MonitorParams};

fn bench_trp_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/trp_detection_trial");
    for &(n, m) in &[(100u64, 5u64), (1000, 10), (2000, 30)] {
        let params = MonitorParams::new(n, m, 0.95).unwrap();
        let f = trp_frame_size(&params).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    trp_detection_trial(black_box(n), m, f, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trp_trial);
criterion_main!(benches);
