//! Micro-benchmarks of the primitives every experiment is built on:
//! the slot hash, bitstring algebra, the Theorem-1 detection
//! probability, and a full honest UTRP round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use tagwatch_core::math::detection::{detection_probability, EmptySlotModel};
use tagwatch_core::utrp::{simulate_round, UtrpChallenge, UtrpParticipant};
use tagwatch_core::Bitstring;
use tagwatch_sim::hash::{mix64, slot_for};
use tagwatch_sim::{Counter, FrameSize, Nonce, TagId, TimingModel};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/hash");
    group.bench_function("mix64", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = mix64(black_box(x));
            x
        });
    });
    group.bench_function("slot_for", |b| {
        let f = FrameSize::new(1478).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            slot_for(TagId::from(i), Nonce::new(42), black_box(f))
        });
    });
    group.finish();
}

fn bench_bitstring(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/bitstring");
    let a: Bitstring = (0..4096).map(|i| i % 3 == 0).collect();
    let b_: Bitstring = (0..4096).map(|i| i % 5 == 0).collect();
    group.bench_function("xor_4096", |b| {
        b.iter(|| black_box(&a).xor(black_box(&b_)).unwrap())
    });
    group.bench_function("hamming_4096", |b| {
        b.iter(|| black_box(&a).hamming_distance(black_box(&b_)).unwrap())
    });
    group.bench_function("count_ones_4096", |b| b.iter(|| black_box(&a).count_ones()));
    group.finish();
}

fn bench_detection_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/detection_probability");
    for &f in &[500u64, 2000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            b.iter(|| {
                detection_probability(black_box(1000), 11, black_box(f), EmptySlotModel::Poisson)
            });
        });
    }
    group.finish();
}

fn bench_utrp_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/utrp_round");
    group.sample_size(20);
    for &n in &[100u64, 500, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            let f = FrameSize::new(2 * n).unwrap();
            let challenge = UtrpChallenge::generate(f, &TimingModel::gen2(), &mut rng);
            b.iter(|| {
                let mut parts: Vec<UtrpParticipant> = (1..=n)
                    .map(|i| UtrpParticipant::new(TagId::from(i), Counter::ZERO))
                    .collect();
                simulate_round(black_box(&mut parts), f, challenge.nonces()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_bitstring,
    bench_detection_math,
    bench_utrp_round
);
criterion_main!(benches);
