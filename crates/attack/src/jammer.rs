//! The jammer (hole-patching) attack — and why it fails.
//!
//! After stealing tags, an adversary might leave a cheap transmitter at
//! the dock that blasts energy into slots during the scan, hoping to
//! "patch the holes" the missing tags would leave in the bitstring.
//! The catch (an immediate corollary of the paper's design): without
//! knowing the registry, the jammer cannot tell *which* slots need
//! patching — the challenge nonce re-randomizes them per scan — so its
//! energy lands mostly in slots the server expects **empty**, each one
//! fresh evidence of tampering. This module implements the strategy
//! anyway, as the natural "can't I just add noise?" question a reviewer
//! asks, and the tests quantify the answer.

use rand::seq::SliceRandom;
use rand::Rng;

use tagwatch_core::trp::{observed_bitstring, TrpChallenge};
use tagwatch_core::{Bitstring, CoreError};
use tagwatch_sim::TagId;

/// How the jammer picks slots to energize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JammerStrategy {
    /// Blast `count` uniformly random slots (no knowledge).
    RandomSlots {
        /// Number of slots to energize.
        count: usize,
    },
    /// Blast every slot (maximally aggressive — and maximally obvious).
    AllSlots,
    /// The strongest realistic variant: the jammer observed the scan
    /// and fills exactly the slots that stayed **empty** — still
    /// detected, because the server expected some of those slots empty
    /// and now sees energy everywhere.
    FillEmpties,
}

/// Runs a TRP scan over `present_ids` with the jammer active, returning
/// the bitstring the server receives.
///
/// # Errors
///
/// Infallible today; `Result` kept for signature stability with the
/// other attack constructors.
pub fn jammed_scan<R: Rng + ?Sized>(
    present_ids: &[TagId],
    challenge: &TrpChallenge,
    strategy: JammerStrategy,
    rng: &mut R,
) -> Result<Bitstring, CoreError> {
    let mut bs = observed_bitstring(present_ids, challenge);
    let len = bs.len();
    match strategy {
        JammerStrategy::RandomSlots { count } => {
            let mut slots: Vec<usize> = (0..len).collect();
            slots.shuffle(rng);
            for &slot in slots.iter().take(count.min(len)) {
                bs.set(slot, true)?;
            }
        }
        JammerStrategy::AllSlots => {
            for slot in 0..len {
                bs.set(slot, true)?;
            }
        }
        JammerStrategy::FillEmpties => {
            for slot in 0..len {
                if !bs.get(slot)? {
                    bs.set(slot, true)?;
                }
            }
        }
    }
    Ok(bs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::trp::verify;
    use tagwatch_core::{trp_frame_size, MonitorParams, Verdict};
    use tagwatch_sim::{FrameSize, TagPopulation};

    fn setup(seed: u64) -> (Vec<TagId>, TagPopulation, TrpChallenge, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut floor = TagPopulation::with_sequential_ids(300);
        let registry = floor.ids();
        floor.remove_random(6, &mut rng).unwrap();
        let params = MonitorParams::new(300, 5, 0.95).unwrap();
        let f = trp_frame_size(&params).unwrap();
        let ch = TrpChallenge::generate(f, &mut rng);
        (registry, floor, ch, rng)
    }

    #[test]
    fn random_jamming_makes_detection_more_likely_not_less() {
        let mut honest_detected = 0;
        let mut jammed_detected = 0;
        for seed in 0..100u64 {
            let (registry, floor, ch, mut rng) = setup(seed);
            let clean = observed_bitstring(&floor.ids(), &ch);
            if verify(&registry, ch.clone(), &clean).unwrap().is_alarm() {
                honest_detected += 1;
            }
            let jammed = jammed_scan(
                &floor.ids(),
                &ch,
                JammerStrategy::RandomSlots { count: 12 },
                &mut rng,
            )
            .unwrap();
            if verify(&registry, ch, &jammed).unwrap().is_alarm() {
                jammed_detected += 1;
            }
        }
        assert!(
            jammed_detected >= honest_detected,
            "jamming should only add evidence: {jammed_detected} vs {honest_detected}"
        );
        assert!(jammed_detected >= 98, "jammed scans nearly always alarm");
    }

    #[test]
    fn all_slots_jamming_is_instantly_detected() {
        for seed in 0..20u64 {
            let (registry, floor, ch, mut rng) = setup(seed);
            let jammed =
                jammed_scan(&floor.ids(), &ch, JammerStrategy::AllSlots, &mut rng).unwrap();
            let report = verify(&registry, ch, &jammed).unwrap();
            assert_eq!(report.verdict, Verdict::NotIntact);
            // Every slot the server expected empty is now a mismatch.
            assert!(report.mismatched_slots > 50, "{}", report.mismatched_slots);
        }
    }

    #[test]
    fn even_fill_empties_cannot_hide_theft() {
        // The information-theoretic point: the server expects a
        // *specific pattern* including zeros; filling all empties turns
        // every expected-zero slot into evidence.
        for seed in 0..20u64 {
            let (registry, floor, ch, mut rng) = setup(seed);
            let jammed =
                jammed_scan(&floor.ids(), &ch, JammerStrategy::FillEmpties, &mut rng).unwrap();
            let report = verify(&registry, ch, &jammed).unwrap();
            assert_eq!(report.verdict, Verdict::NotIntact, "seed {seed}");
        }
    }

    #[test]
    fn jamming_an_intact_set_causes_false_alarm_not_acceptance() {
        // Sanity direction check: jamming can only ever push toward
        // NotIntact, never launder a set into acceptance.
        let mut rng = StdRng::seed_from_u64(7);
        let floor = TagPopulation::with_sequential_ids(100);
        let ch = TrpChallenge::generate(FrameSize::new(256).unwrap(), &mut rng);
        let jammed = jammed_scan(
            &floor.ids(),
            &ch,
            JammerStrategy::RandomSlots { count: 5 },
            &mut rng,
        )
        .unwrap();
        let report = verify(&floor.ids(), ch, &jammed).unwrap();
        // 5 random slots in a 256-slot frame with ~32% occupancy: with
        // probability 1 − 0.32⁵ ≈ 0.997 at least one lands on an
        // expected-zero slot → alarm. This seed alarms.
        assert!(report.is_alarm());
    }

    #[test]
    fn zero_count_jammer_is_a_no_op() {
        let mut rng = StdRng::seed_from_u64(8);
        let floor = TagPopulation::with_sequential_ids(50);
        let ch = TrpChallenge::generate(FrameSize::new(128).unwrap(), &mut rng);
        let clean = observed_bitstring(&floor.ids(), &ch);
        let jammed = jammed_scan(
            &floor.ids(),
            &ch,
            JammerStrategy::RandomSlots { count: 0 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(clean, jammed);
    }
}
