//! The replay attack (paper §1, §5.1).
//!
//! "A dishonest employee can first collect all the tag IDs prior to the
//! theft, and then replay the data back to the server later." Against a
//! bitstring protocol the equivalent is recording the `bs` of an intact
//! scan and returning it after stealing tags. The defence is freshness:
//! the server issues a new `(f, r)` every time, and a recorded `bs` is
//! only valid for the `(f, r)` it was captured under.

use std::collections::BTreeMap;

use tagwatch_sim::{FrameSize, Nonce};

use tagwatch_core::trp::TrpChallenge;
use tagwatch_core::Bitstring;

/// An attacker that records observed (challenge, bitstring) pairs and
/// replays the best match later.
#[derive(Debug, Clone, Default)]
pub struct ReplayAttacker {
    // Keyed by the exact (f, r) the recording was captured under.
    exact: BTreeMap<(u64, Nonce), Bitstring>,
    // Most recent recording per frame size, for the fallback replay.
    by_frame: BTreeMap<u64, Bitstring>,
}

impl ReplayAttacker {
    /// Creates an attacker with an empty tape.
    #[must_use]
    pub fn new() -> Self {
        ReplayAttacker::default()
    }

    /// Number of distinct `(f, r)` recordings held.
    #[must_use]
    pub fn recordings(&self) -> usize {
        self.exact.len()
    }

    /// Records a bitstring observed for a challenge (e.g. sniffed from
    /// an honest scan while the set was still intact).
    pub fn record(&mut self, challenge: &TrpChallenge, bs: Bitstring) {
        let f = challenge.frame_size().get();
        self.exact.insert((f, challenge.plan().nonce()), bs.clone());
        self.by_frame.insert(f, bs);
    }

    /// The attacker's best response to a fresh challenge:
    ///
    /// 1. an exact `(f, r)` match — only possible if the server reused a
    ///    challenge (the vulnerability the nonce exists to close);
    /// 2. otherwise any recording with the right frame size (wrong
    ///    nonce, so the slot pattern will not line up);
    /// 3. otherwise an all-zero bitstring of the right length.
    #[must_use]
    pub fn respond(&self, challenge: &TrpChallenge) -> Bitstring {
        let f = challenge.frame_size().get();
        if let Some(bs) = self.exact.get(&(f, challenge.plan().nonce())) {
            return bs.clone();
        }
        if let Some(bs) = self.by_frame.get(&f) {
            return bs.clone();
        }
        Bitstring::zeros(challenge.frame_size().as_usize())
    }

    /// Whether the attacker holds an exact recording for this challenge.
    #[must_use]
    pub fn has_exact(&self, f: FrameSize, r: Nonce) -> bool {
        self.exact.contains_key(&(f.get(), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::trp::{observed_bitstring, verify};
    use tagwatch_core::Verdict;
    use tagwatch_sim::aloha::FramePlan;
    use tagwatch_sim::TagId;

    fn ids(n: u64) -> Vec<TagId> {
        (1..=n).map(TagId::from).collect()
    }

    fn challenge(f: u64, r: u64) -> TrpChallenge {
        TrpChallenge::new(FramePlan::new(FrameSize::new(f).unwrap(), Nonce::new(r)))
    }

    #[test]
    fn replay_succeeds_against_a_reused_challenge() {
        // The vulnerability: a lazy server reusing (f, r) accepts a
        // recording made before the theft.
        let all = ids(100);
        let ch = challenge(256, 42);
        let mut attacker = ReplayAttacker::new();
        attacker.record(&ch, observed_bitstring(&all, &ch));

        // Theft happens; the server (incorrectly) reissues the same
        // challenge. The replay passes verification.
        let reused = challenge(256, 42);
        let report = verify(&all, reused, &attacker.respond(&challenge(256, 42))).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Intact,
            "replay should fool a reused nonce"
        );
    }

    #[test]
    fn replay_fails_against_a_fresh_nonce() {
        // The defence (§5.1): new (f, r) per scan invalidates the tape.
        let all = ids(100);
        let old = challenge(256, 42);
        let mut attacker = ReplayAttacker::new();
        attacker.record(&old, observed_bitstring(&all, &old));

        let fresh = challenge(256, 43);
        let response = attacker.respond(&fresh);
        let report = verify(&all, fresh, &response).unwrap();
        assert_eq!(report.verdict, Verdict::NotIntact);
        assert!(report.mismatched_slots > 0);
    }

    #[test]
    fn replay_fails_across_many_fresh_nonces() {
        let all = ids(200);
        let old = challenge(400, 1);
        let mut attacker = ReplayAttacker::new();
        attacker.record(&old, observed_bitstring(&all, &old));

        let mut rng = StdRng::seed_from_u64(5);
        let mut fooled = 0;
        for _ in 0..100 {
            let fresh = TrpChallenge::generate(FrameSize::new(400).unwrap(), &mut rng);
            let report = verify(&all, fresh.clone(), &attacker.respond(&fresh)).unwrap();
            if report.verdict == Verdict::Intact {
                fooled += 1;
            }
        }
        assert_eq!(fooled, 0, "fresh nonces must never accept a replay");
    }

    #[test]
    fn responds_with_zeros_when_tape_is_empty() {
        let attacker = ReplayAttacker::new();
        let ch = challenge(64, 9);
        let bs = attacker.respond(&ch);
        assert_eq!(bs.len(), 64);
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn bookkeeping_accessors() {
        let mut attacker = ReplayAttacker::new();
        assert_eq!(attacker.recordings(), 0);
        let ch = challenge(32, 7);
        attacker.record(&ch, Bitstring::zeros(32));
        assert_eq!(attacker.recordings(), 1);
        assert!(attacker.has_exact(FrameSize::new(32).unwrap(), Nonce::new(7)));
        assert!(!attacker.has_exact(FrameSize::new(32).unwrap(), Nonce::new(8)));
    }
}
