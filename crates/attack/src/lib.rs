//! # tagwatch-attack
//!
//! Adversary implementations against the missing-tag monitoring
//! protocols — the other half of a security paper's reproduction. A
//! defence is only demonstrated by an attack that *works against the
//! weaker design and fails against the hardened one*:
//!
//! * [`replay`] — record a bitstring, play it back later (§1, §5.1's
//!   first vulnerability; defeated by fresh nonces).
//! * [`split_set`] — the collusion attack of Alg. 4: steal a subset,
//!   have an accomplice scan it remotely, OR the bitstrings. Defeats
//!   TRP completely.
//! * [`colluder`] — the *best-strategy* attack against UTRP from §5.4:
//!   synchronize re-seeds over a budgeted side channel for as long as
//!   the deadline allows, then finish solo. Eq. 3's frame sizing is
//!   exactly what keeps this attack detectable, and Fig. 7 measures it.
//! * [`rescan`] — the pre-scan attack against a **counter-less** UTRP
//!   variant (§5.2, Fig. 3): the ablation showing the hardware counter
//!   is load-bearing, not decorative.
//! * [`jammer`] — energy injection to "patch the holes" missing tags
//!   leave: only ever adds evidence, quantified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod colluder;
pub mod jammer;
pub mod replay;
pub mod rescan;
pub mod split_set;

pub use colluder::{collude_utrp, collude_utrp_reference, ColluderConfig, ColluderOutcome};
pub use jammer::{jammed_scan, JammerStrategy};
pub use replay::ReplayAttacker;
pub use rescan::{counterless_round, prescan_attack};
pub use split_set::split_set_attack;
