//! The best-strategy collusion attack against UTRP (paper §5.4).
//!
//! The dishonest reader `R1` holds the remaining set `s1`; the
//! accomplice `R2` holds the stolen set `s2`. Both know the committed
//! nonce sequence, so they can run the protocol in lockstep — *if* they
//! synchronize: UTRP re-seeds after every reply slot, and `R1` cannot
//! know whether `s2` replied in a slot where `s1` stayed quiet without
//! asking over the side channel. Each such ask costs `tcomm`, and the
//! server's deadline only leaves room for `c` of them.
//!
//! The paper identifies the colluders' optimal play, implemented here:
//!
//! 1. While budget remains, stay synchronized: on every slot where `R1`
//!    hears nothing it spends one sync to learn `R2`'s observation; the
//!    combined bitstring is exact and both sides re-seed together.
//! 2. When the budget runs out, `R1` finishes the frame alone over
//!    `s1`, re-seeding only on its own replies, and returns the result.
//!
//! The prefix up to the desynchronization point is correct; everything
//! after carries detection signal — which is precisely what Eq. 3 sizes
//! the frame to exploit (Fig. 7 measures the outcome).
//!
//! Counter bookkeeping: `s1` tags hear every `R1` announcement; `s2`
//! tags hear `R2`'s, which stop at the desync point (the accomplice has
//! nothing further to contribute). Both sets' hardware counters advance
//! accordingly.

use tagwatch_core::nonce::NonceCursor;
use tagwatch_core::utrp::{
    round_duration, RoundOutcome, SubsetRound, UtrpChallenge, UtrpParticipant, UtrpResponse,
};
use tagwatch_core::{Bitstring, CoreError};
use tagwatch_sim::hash::slot_for_counted;
use tagwatch_sim::{FrameSize, Nonce, SimDuration, TagPopulation, TimingModel};

/// Collusion parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColluderConfig {
    /// The synchronization budget `c` (the paper's evaluation uses 20).
    pub sync_budget: u64,
    /// Side-channel round-trip latency, billed per synchronization.
    pub tcomm: SimDuration,
}

impl Default for ColluderConfig {
    fn default() -> Self {
        ColluderConfig {
            sync_budget: 20,
            tcomm: SimDuration::from_micros(500),
        }
    }
}

/// What the attack produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColluderOutcome {
    /// The forged response `R1` returns to the server.
    pub response: UtrpResponse,
    /// Synchronizations actually spent (≤ budget).
    pub syncs_used: u64,
    /// The global slot at which the readers desynchronized, if the
    /// budget ran out before the frame ended.
    pub desync_slot: Option<u64>,
}

/// One reader's working state over its tag subset.
#[derive(Debug)]
struct Subset {
    parts: Vec<UtrpParticipant>,
    replied: Vec<bool>,
    buckets: Vec<Vec<usize>>,
    announcements: u64,
}

impl Subset {
    fn new(pop: &TagPopulation) -> Self {
        let parts: Vec<UtrpParticipant> = pop
            .iter()
            .map(|t| UtrpParticipant {
                id: t.id(),
                counter: t.counter(),
                mute: t.is_detuned(),
            })
            .collect();
        let replied = vec![false; parts.len()];
        Subset {
            parts,
            replied,
            buckets: Vec::new(),
            announcements: 0,
        }
    }

    /// Announce `(f_sub, r)`: every tag increments its counter;
    /// un-replied, un-mute tags re-bucket.
    fn announce(&mut self, r: Nonce, f_sub: FrameSize) {
        self.announcements += 1;
        self.buckets = vec![Vec::new(); f_sub.as_usize()];
        for (i, p) in self.parts.iter_mut().enumerate() {
            p.counter.increment();
            if !self.replied[i] && !p.mute {
                let sn = slot_for_counted(p.id, r, p.counter, f_sub);
                self.buckets[sn as usize].push(i);
            }
        }
    }

    fn has_reply(&self, rel: usize) -> bool {
        !self.buckets[rel].is_empty()
    }

    fn mark_replied(&mut self, rel: usize) {
        // Take the bucket to appease the borrow checker; buckets are
        // rebuilt on the next announce anyway.
        let bucket = std::mem::take(&mut self.buckets[rel]);
        for i in bucket {
            self.replied[i] = true;
        }
    }
}

/// Executes the best-strategy collusion attack and writes the tags'
/// advanced hardware counters back into both populations.
///
/// This is the fast engine: it skips runs of empty slots analytically
/// (budget arithmetic instead of slot-by-slot waiting) using
/// [`SubsetRound`]. The literal per-slot form is kept as
/// [`collude_utrp_reference`]; the two are tested to agree exactly.
///
/// # Errors
///
/// Returns [`CoreError::NonceSequenceExhausted`] only on a malformed
/// challenge (the committed sequence always covers a full frame).
pub fn collude_utrp(
    s1: &mut TagPopulation,
    s2: &mut TagPopulation,
    challenge: &UtrpChallenge,
    config: &ColluderConfig,
    timing: &TimingModel,
) -> Result<ColluderOutcome, CoreError> {
    let f = challenge.frame_size();
    let total = f.get();
    let mut cursor: NonceCursor<'_> = challenge.nonces().cursor();

    let collect = |pop: &TagPopulation| -> Vec<UtrpParticipant> {
        pop.iter()
            .map(|t| UtrpParticipant {
                id: t.id(),
                counter: t.counter(),
                mute: t.is_detuned(),
            })
            .collect()
    };
    let mut r1 = SubsetRound::new(collect(s1));
    let mut r2 = SubsetRound::new(collect(s2));
    let first = cursor.next_nonce()?;
    r1.announce(first, f);
    r2.announce(first, f);

    let mut bs = Bitstring::zeros(f.as_usize());
    let mut subframe_start = 0u64;
    let mut budget = config.sync_budget;
    let mut syncs_used = 0u64;
    let mut synced = true;
    let mut desync_slot = None;

    loop {
        if synced {
            let a = r1.next_reply_rel();
            let b = r2.next_reply_rel();
            // Relative slot of the next combined event, if any.
            let event = match (a, b) {
                (None, None) => None,
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (Some(x), Some(y)) => Some(x.min(y)),
            };
            let Some(e) = event else {
                // No further replies anywhere: R1 must still ask R2 on
                // every remaining (empty) slot of the frame.
                let remaining_slots = total - subframe_start;
                if budget >= remaining_slots {
                    syncs_used += remaining_slots;
                } else {
                    syncs_used += budget;
                    desync_slot = Some(subframe_start + budget);
                }
                break;
            };
            // Slots before `e` are empty for R1 and cost one sync each;
            // the event slot itself is free iff R1 hears its own tags.
            let r1_replies_at_e = a == Some(e);
            let cost = if r1_replies_at_e { e } else { e + 1 };
            if budget < cost {
                // Budget dies on an empty slot at relative index
                // `budget`; R1 carries on alone from there.
                syncs_used += budget;
                desync_slot = Some(subframe_start + budget);
                budget = 0;
                synced = false;
                continue;
            }
            budget -= cost;
            syncs_used += cost;
            let global = subframe_start + e;
            bs.set(global as usize, true)?;
            if r1_replies_at_e {
                r1.take_reply();
            }
            if b == Some(e) {
                r2.take_reply();
            }
            let remaining = total - (global + 1);
            if remaining == 0 {
                break;
            }
            subframe_start = global + 1;
            let f_sub = FrameSize::new(remaining)?;
            let r = cursor.next_nonce()?;
            r1.announce(r, f_sub);
            r2.announce(r, f_sub);
        } else {
            // Phase 2: R1 alone over s1, re-seeding on its own replies.
            let Some(rel) = r1.next_reply_rel() else {
                break;
            };
            let global = subframe_start + rel;
            bs.set(global as usize, true)?;
            r1.take_reply();
            let remaining = total - (global + 1);
            if remaining == 0 {
                break;
            }
            subframe_start = global + 1;
            let f_sub = FrameSize::new(remaining)?;
            r1.announce(cursor.next_nonce()?, f_sub);
        }
    }

    // Every in-range tag heard its reader's announcements.
    let ann1 = r1.announcements();
    let ann2 = r2.announcements();
    for tag in s1.iter_mut() {
        tag.advance_counter(ann1);
    }
    for tag in s2.iter_mut() {
        tag.advance_counter(ann2);
    }

    let outcome = RoundOutcome {
        bitstring: bs,
        announcements: ann1,
    };
    let elapsed = round_duration(timing, &outcome) + config.tcomm * syncs_used;
    Ok(ColluderOutcome {
        response: UtrpResponse {
            bitstring: outcome.bitstring,
            elapsed,
            announcements: outcome.announcements,
        },
        syncs_used,
        desync_slot,
    })
}

/// The literal slot-by-slot form of the attack (§5.4), kept as an
/// executable specification of [`collude_utrp`].
///
/// # Errors
///
/// Same as [`collude_utrp`].
pub fn collude_utrp_reference(
    s1: &mut TagPopulation,
    s2: &mut TagPopulation,
    challenge: &UtrpChallenge,
    config: &ColluderConfig,
    timing: &TimingModel,
) -> Result<ColluderOutcome, CoreError> {
    let f = challenge.frame_size();
    let total = f.get();
    let mut cursor: NonceCursor<'_> = challenge.nonces().cursor();

    let mut r1 = Subset::new(s1);
    let mut r2 = Subset::new(s2);
    let first = cursor.next_nonce()?;
    r1.announce(first, f);
    r2.announce(first, f);

    let mut bs = Bitstring::zeros(f.as_usize());
    let mut subframe_start = 0u64;
    let mut budget = config.sync_budget;
    let mut syncs_used = 0u64;
    let mut synced = true;
    let mut desync_slot = None;

    for global in 0..total {
        let rel = (global - subframe_start) as usize;
        let r1_reply = r1.has_reply(rel);

        let occupied = if synced {
            if r1_reply {
                // R1 heard its own tags; it proceeds (and tells R2 to
                // re-seed) without waiting — the paper bills only the
                // waits on R1-empty slots against the budget.
                true
            } else if budget > 0 {
                budget -= 1;
                syncs_used += 1;
                r2.has_reply(rel)
            } else {
                synced = false;
                desync_slot = Some(global);
                false
            }
        } else {
            r1_reply
        };

        if !occupied {
            continue;
        }
        bs.set(global as usize, true)?;
        if r1_reply {
            r1.mark_replied(rel);
        }
        if synced {
            r2.mark_replied(rel);
        }
        let remaining = total - (global + 1);
        if remaining > 0 {
            subframe_start = global + 1;
            let f_sub = FrameSize::new(remaining)?;
            let r = cursor.next_nonce()?;
            r1.announce(r, f_sub);
            if synced {
                r2.announce(r, f_sub);
            }
        }
    }

    // Write back hardware counters.
    for tag in s1.iter_mut() {
        tag.advance_counter(r1.announcements);
    }
    for tag in s2.iter_mut() {
        tag.advance_counter(r2.announcements);
    }

    let outcome = RoundOutcome {
        bitstring: bs,
        announcements: r1.announcements,
    };
    let elapsed = round_duration(timing, &outcome) + config.tcomm * syncs_used;
    Ok(ColluderOutcome {
        response: UtrpResponse {
            bitstring: outcome.bitstring,
            elapsed,
            announcements: outcome.announcements,
        },
        syncs_used,
        desync_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::utrp::expected_round;
    use tagwatch_sim::TagId;

    fn split(n: usize, steal: usize, seed: u64) -> (TagPopulation, TagPopulation) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s1 = TagPopulation::with_sequential_ids(n);
        let s2 = s1.split_random(steal, &mut rng).unwrap();
        (s1, s2)
    }

    fn registry(n: u64) -> Vec<(TagId, tagwatch_sim::Counter)> {
        (1..=n)
            .map(|i| (TagId::from(i), tagwatch_sim::Counter::ZERO))
            .collect()
    }

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    #[test]
    fn fast_attack_matches_slot_by_slot_reference() {
        // Same bitstring, sync count, desync point, counters, and
        // elapsed time across budgets and split shapes.
        for (n, steal, f_raw, budget, seed) in [
            (30usize, 5usize, 60u64, 0u64, 1u64),
            (50, 10, 100, 3, 2),
            (100, 11, 250, 20, 3),
            (100, 50, 150, 7, 4),
            (80, 8, 200, 1000, 5), // budget never runs out
            (40, 39, 120, 10, 6),  // nearly everything stolen
        ] {
            let ch = challenge(f_raw, seed);
            let config = ColluderConfig {
                sync_budget: budget,
                tcomm: SimDuration::from_micros(3),
            };
            let (mut a1, mut a2) = split(n, steal, seed + 100);
            let (mut b1, mut b2) = (a1.clone(), a2.clone());
            let fast = collude_utrp(&mut a1, &mut a2, &ch, &config, &TimingModel::gen2()).unwrap();
            let reference =
                collude_utrp_reference(&mut b1, &mut b2, &ch, &config, &TimingModel::gen2())
                    .unwrap();
            assert_eq!(
                fast, reference,
                "outcome diverged for n={n} steal={steal} f={f_raw} c={budget}"
            );
            let counters =
                |p: &TagPopulation| p.iter().map(|t| (t.id(), t.counter())).collect::<Vec<_>>();
            assert_eq!(counters(&a1), counters(&b1), "s1 counters diverged");
            assert_eq!(counters(&a2), counters(&b2), "s2 counters diverged");
        }
    }

    #[test]
    fn unlimited_budget_forges_a_perfect_bitstring() {
        // With enough syncs the colluders ARE one reader: their forged
        // bs must equal the honest full-set bitstring.
        let (mut s1, mut s2) = split(100, 11, 1);
        let ch = challenge(300, 2);
        let config = ColluderConfig {
            sync_budget: 300,
            tcomm: SimDuration::from_micros(1),
        };
        let outcome = collude_utrp(&mut s1, &mut s2, &ch, &config, &TimingModel::gen2()).unwrap();
        let expected = expected_round(&registry(100), &ch).unwrap();
        assert_eq!(outcome.response.bitstring, expected.bitstring);
        assert_eq!(outcome.desync_slot, None);
    }

    #[test]
    fn budgeted_attack_is_usually_detected() {
        // The paper's claim: with Eq. 3 sizing and c = 20, the best
        // strategy still mismatches with probability > alpha.
        use tagwatch_core::{utrp_frame_size, MonitorParams, UtrpSizing};
        let params = MonitorParams::new(200, 5, 0.95).unwrap();
        let f = utrp_frame_size(&params, UtrpSizing::default()).unwrap();
        let config = ColluderConfig {
            sync_budget: 20,
            tcomm: SimDuration::from_micros(1),
        };

        let mut detected = 0;
        let trials = 120;
        for seed in 0..trials {
            let (mut s1, mut s2) = split(200, 6, 100 + seed);
            let ch = challenge(f.get(), 200 + seed);
            let outcome =
                collude_utrp(&mut s1, &mut s2, &ch, &config, &TimingModel::gen2()).unwrap();
            let expected = expected_round(&registry(200), &ch).unwrap();
            if outcome.response.bitstring != expected.bitstring {
                detected += 1;
            }
        }
        let rate = detected as f64 / trials as f64;
        assert!(rate > 0.9, "detection rate {rate}");
    }

    #[test]
    fn prefix_before_desync_is_correct() {
        let (mut s1, mut s2) = split(150, 10, 3);
        let ch = challenge(400, 4);
        let config = ColluderConfig {
            sync_budget: 15,
            tcomm: SimDuration::from_micros(1),
        };
        let outcome = collude_utrp(&mut s1, &mut s2, &ch, &config, &TimingModel::gen2()).unwrap();
        let expected = expected_round(&registry(150), &ch).unwrap();
        let desync = outcome
            .desync_slot
            .expect("budget of 15 must run out on a 400-slot frame") as usize;
        for i in 0..desync {
            assert_eq!(
                outcome.response.bitstring.get(i).unwrap(),
                expected.bitstring.get(i).unwrap(),
                "prefix bit {i} differs before desync at {desync}"
            );
        }
    }

    #[test]
    fn syncs_never_exceed_budget() {
        let (s1, s2) = split(100, 20, 5);
        let ch = challenge(256, 6);
        for budget in [0u64, 1, 7, 50] {
            let mut a = s1.clone();
            let mut b = s2.clone();
            let config = ColluderConfig {
                sync_budget: budget,
                tcomm: SimDuration::from_micros(1),
            };
            let outcome = collude_utrp(&mut a, &mut b, &ch, &config, &TimingModel::gen2()).unwrap();
            assert!(outcome.syncs_used <= budget);
        }
    }

    #[test]
    fn side_channel_time_is_billed() {
        let (mut s1, mut s2) = split(100, 10, 7);
        let ch = challenge(256, 8);
        let slow = ColluderConfig {
            sync_budget: 20,
            tcomm: SimDuration::from_millis(10),
        };
        let outcome = collude_utrp(&mut s1, &mut s2, &ch, &slow, &TimingModel::gen2()).unwrap();
        assert!(
            outcome.response.elapsed.as_micros() >= outcome.syncs_used * 10_000,
            "tcomm not billed"
        );
    }

    #[test]
    fn zero_budget_is_a_lone_dishonest_reader() {
        // c = 0: R1 never syncs; its bitstring is just an honest scan of
        // s1 under a diverging re-seed schedule.
        let (mut s1, mut s2) = split(80, 8, 9);
        let ch = challenge(200, 10);
        let config = ColluderConfig {
            sync_budget: 0,
            tcomm: SimDuration::from_micros(1),
        };
        let outcome = collude_utrp(&mut s1, &mut s2, &ch, &config, &TimingModel::gen2()).unwrap();
        assert_eq!(outcome.syncs_used, 0);
        // s2's tags heard only the initial announcement.
        assert!(s2.iter().all(|t| t.counter().get() == 1));
    }

    #[test]
    fn counters_advance_in_lockstep_while_synced() {
        let (mut s1, mut s2) = split(60, 6, 11);
        let ch = challenge(150, 12);
        let config = ColluderConfig {
            sync_budget: 150,
            tcomm: SimDuration::from_micros(1),
        };
        collude_utrp(&mut s1, &mut s2, &ch, &config, &TimingModel::gen2()).unwrap();
        // Fully synced: both subsets heard the same announcements.
        let c1 = s1.iter().next().unwrap().counter();
        assert!(s1.iter().all(|t| t.counter() == c1));
        assert!(s2.iter().all(|t| t.counter() == c1));
    }
}
