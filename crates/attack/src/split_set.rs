//! The split-set collusion attack against TRP (paper Alg. 4, Fig. 1).
//!
//! The dishonest reader `R1` steals a subset `s2` and hands it to a
//! collaborator `R2` with their own reader. When the server issues
//! `(f, r)`, both scan their halves under the same challenge and `R1`
//! returns `b̂s = bs_{s1} ∨ bs_{s2}` — which equals the honest `bs`
//! exactly, because TRP slot choice depends only on `(id, r, f)` and a
//! set-union of responders ORs into a bitwise union of slots. **One
//! message** on the side channel suffices, so no realistic timer stops
//! it. This module exists to demonstrate that TRP alone is broken
//! against colluders, motivating UTRP.

use tagwatch_core::trp::{observed_bitstring, TrpChallenge};
use tagwatch_core::{Bitstring, CoreError};
use tagwatch_sim::TagId;

/// Executes the Alg. 4 attack: scans `s1` and `s2` independently under
/// the same challenge and merges the bitstrings.
///
/// # Errors
///
/// Infallible for well-formed inputs; the `Result` surfaces bitstring
/// length mismatches defensively (cannot occur when both scans use the
/// same challenge).
pub fn split_set_attack(
    s1_ids: &[TagId],
    s2_ids: &[TagId],
    challenge: &TrpChallenge,
) -> Result<Bitstring, CoreError> {
    let bs1 = observed_bitstring(s1_ids, challenge);
    let bs2 = observed_bitstring(s2_ids, challenge);
    bs1.or(&bs2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::trp::{expected_bitstring, verify};
    use tagwatch_core::{trp_frame_size, MonitorParams, Verdict};
    use tagwatch_sim::{FrameSize, TagPopulation};

    #[test]
    fn merged_bitstring_equals_honest_bitstring() {
        // The core of Alg. 4: OR of the halves = scan of the whole.
        let mut rng = StdRng::seed_from_u64(3);
        let mut s1 = TagPopulation::with_sequential_ids(500);
        let s2 = s1.split_random(123, &mut rng).unwrap();
        let ch = TrpChallenge::generate(FrameSize::new(900).unwrap(), &mut rng);

        let all_ids: Vec<_> = s1.ids().into_iter().chain(s2.ids()).collect();
        let honest = expected_bitstring(&all_ids, &ch);
        let forged = split_set_attack(&s1.ids(), &s2.ids(), &ch).unwrap();
        assert_eq!(forged, honest);
    }

    #[test]
    fn attack_defeats_trp_with_eq2_frame() {
        // Full protocol flow: Eq. 2-sized frame, m + 1 tags "stolen"
        // (held by the collaborator), forged bitstring — verification
        // passes every time. TRP is broken against colluders.
        let params = MonitorParams::new(400, 10, 0.95).unwrap();
        let f = trp_frame_size(&params).unwrap();
        let mut fooled = 0;
        let trials = 50;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s1 = TagPopulation::with_sequential_ids(400);
            let s2 = s1.split_random(11, &mut rng).unwrap();
            let ch = TrpChallenge::generate(f, &mut rng);
            let all_ids: Vec<_> = s1.ids().into_iter().chain(s2.ids()).collect();
            let forged = split_set_attack(&s1.ids(), &s2.ids(), &ch).unwrap();
            let report = verify(&all_ids, ch, &forged).unwrap();
            if report.verdict == Verdict::Intact {
                fooled += 1;
            }
        }
        assert_eq!(fooled, trials, "alg. 4 must always defeat plain TRP");
    }

    #[test]
    fn without_collusion_the_theft_is_usually_caught() {
        // Control experiment: same theft, but R1 returns only its own
        // half — detection works as designed.
        let params = MonitorParams::new(400, 10, 0.95).unwrap();
        let f = trp_frame_size(&params).unwrap();
        let mut detected = 0;
        let trials = 200;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut s1 = TagPopulation::with_sequential_ids(400);
            let s2 = s1.split_random(11, &mut rng).unwrap();
            let ch = TrpChallenge::generate(f, &mut rng);
            let all_ids: Vec<_> = s1.ids().into_iter().chain(s2.ids()).collect();
            let alone = observed_bitstring(&s1.ids(), &ch);
            let report = verify(&all_ids, ch, &alone).unwrap();
            if report.verdict == Verdict::NotIntact {
                detected += 1;
            }
        }
        assert!(
            detected as f64 / trials as f64 > 0.9,
            "detected only {detected}/{trials}"
        );
    }

    #[test]
    fn attack_works_for_any_split_ratio() {
        let mut rng = StdRng::seed_from_u64(8);
        for steal in [1usize, 50, 150, 299] {
            let mut s1 = TagPopulation::with_sequential_ids(300);
            let s2 = s1.split_random(steal, &mut rng).unwrap();
            let ch = TrpChallenge::generate(FrameSize::new(512).unwrap(), &mut rng);
            let all_ids: Vec<_> = s1.ids().into_iter().chain(s2.ids()).collect();
            let honest = expected_bitstring(&all_ids, &ch);
            let forged = split_set_attack(&s1.ids(), &s2.ids(), &ch).unwrap();
            assert_eq!(forged, honest, "steal = {steal}");
        }
    }
}
