//! The pre-scan attack against a **counter-less** UTRP variant — the
//! ablation that justifies the hardware counter (paper §5.2, Fig. 3).
//!
//! Re-seeding alone looks like it forces colluders to synchronize, but
//! the paper observes it does not: "re-seeding does not prevent readers
//! from running the algorithm multiple times to gain some information."
//! Without a counter, a tag's behaviour is a **pure function** of
//! `(id, nonce sequence)` — so a dishonest reader that has *ever*
//! learned the IDs (one collect-all before the theft) can simulate the
//! entire re-seeded round offline, for any split of the tags, with
//! **zero** interactive synchronizations. This module implements that
//! counter-less variant and the attack, and the tests show:
//!
//! * against counter-less UTRP the offline forgery is **always** a
//!   bit-perfect match (detection probability 0);
//! * against real UTRP the same knowledge is useless, because every
//!   announcement mutates hidden tag state (`ct`) that the server
//!   mirrors but the attacker cannot rewind.

use tagwatch_core::utrp::UtrpChallenge;
use tagwatch_core::{Bitstring, CoreError, NonceSequence};
use tagwatch_sim::{slot_for, FrameSize, TagId};

/// Executes one round of the **counter-less** UTRP variant: identical
/// re-seed structure to Alg. 6, but tags pick slots as
/// `h(id ⊕ r) mod f'` with no per-tag state.
///
/// Being stateless, the result depends only on `(ids, f, nonces)` — the
/// property the attack exploits.
///
/// # Errors
///
/// Returns [`CoreError::NonceSequenceExhausted`] if the sequence is
/// shorter than the frame.
pub fn counterless_round(
    ids: &[TagId],
    f: FrameSize,
    nonces: &NonceSequence,
) -> Result<Bitstring, CoreError> {
    let total = f.get();
    let mut bs = Bitstring::zeros(f.as_usize());
    let mut cursor = nonces.cursor();

    let mut remaining: Vec<TagId> = ids.to_vec();
    let mut subframe_start = 0u64;
    let mut r = cursor.next_nonce()?;
    let mut f_sub = f;

    loop {
        // Earliest relative slot among remaining tags.
        let mut min_rel: Option<u64> = None;
        for &id in &remaining {
            let sn = slot_for(id, r, f_sub);
            if min_rel.is_none_or(|best| sn < best) {
                min_rel = Some(sn);
            }
        }
        let Some(rel) = min_rel else { break };
        let global = subframe_start + rel;
        bs.set(global as usize, true)?;
        remaining.retain(|&id| slot_for(id, r, f_sub) != rel);

        let left = total - (global + 1);
        if left == 0 {
            break;
        }
        subframe_start = global + 1;
        f_sub = FrameSize::new(left)?;
        r = cursor.next_nonce()?;
    }
    Ok(bs)
}

/// The offline forgery: colluders who know both ID sets (from a
/// pre-theft inventory) simulate the counter-less round locally. No
/// radio contact with the stolen tags, no side-channel syncs — one
/// exchange of ID lists beforehand suffices.
///
/// # Errors
///
/// Propagates [`counterless_round`] errors.
pub fn prescan_attack(
    s1_ids: &[TagId],
    s2_ids: &[TagId],
    challenge: &UtrpChallenge,
) -> Result<Bitstring, CoreError> {
    let all: Vec<TagId> = s1_ids.iter().chain(s2_ids.iter()).copied().collect();
    counterless_round(&all, challenge.frame_size(), challenge.nonces())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::utrp::expected_round;
    use tagwatch_sim::{Counter, TagPopulation, TimingModel};

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    #[test]
    fn counterless_round_is_a_pure_function() {
        let ids: Vec<TagId> = (1..=60u64).map(TagId::from).collect();
        let ch = challenge(150, 1);
        let a = counterless_round(&ids, ch.frame_size(), ch.nonces()).unwrap();
        let b = counterless_round(&ids, ch.frame_size(), ch.nonces()).unwrap();
        // No hidden state: rescanning yields the identical bitstring —
        // exactly what the hardware counter exists to prevent.
        assert_eq!(a, b);
    }

    #[test]
    fn prescan_attack_always_defeats_counterless_utrp() {
        // 50 attempts, all bit-perfect: the counter-less design is
        // completely broken against colluders with prior knowledge.
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s1 = TagPopulation::with_sequential_ids(120);
            let s2 = s1.split_random(11, &mut rng).unwrap();
            let ch = challenge(300, 100 + seed);

            let honest_server_view: Vec<TagId> = s1.ids().into_iter().chain(s2.ids()).collect();
            let expected =
                counterless_round(&honest_server_view, ch.frame_size(), ch.nonces()).unwrap();
            let forged = prescan_attack(&s1.ids(), &s2.ids(), &ch).unwrap();
            assert_eq!(forged, expected, "seed {seed}");
        }
    }

    #[test]
    fn the_same_knowledge_is_useless_against_real_utrp() {
        // Give the attacker full ID knowledge and the counter-less
        // simulator: against the real (counter-mixing) server
        // prediction the forgery essentially never matches.
        let mut fooled = 0;
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(1_000 + seed);
            let mut s1 = TagPopulation::with_sequential_ids(120);
            let s2 = s1.split_random(11, &mut rng).unwrap();
            let ch = challenge(300, 2_000 + seed);

            let registry: Vec<(TagId, Counter)> = (1..=120u64)
                .map(|i| (TagId::from(i), Counter::ZERO))
                .collect();
            let expected = expected_round(&registry, &ch).unwrap();
            let forged = prescan_attack(&s1.ids(), &s2.ids(), &ch).unwrap();
            if forged == expected.bitstring {
                fooled += 1;
            }
        }
        assert_eq!(fooled, 0, "offline forgery beat the counter {fooled} times");
    }

    #[test]
    fn counterless_round_has_sane_shape() {
        let ids: Vec<TagId> = (1..=40u64).map(TagId::from).collect();
        let ch = challenge(100, 3);
        let bs = counterless_round(&ids, ch.frame_size(), ch.nonces()).unwrap();
        let ones = bs.count_ones();
        assert!(ones > 0 && ones <= 40);
    }

    #[test]
    fn empty_id_set_yields_all_zeros() {
        let ch = challenge(32, 4);
        let bs = counterless_round(&[], ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(bs.count_ones(), 0);
    }
}
