//! The `soak` subcommand: drive the long-horizon soak harness and
//! write its JSON report for CI regression tracking.

use std::path::PathBuf;

use tagwatch_analytics::soak::{
    run_soak_observed_threads, run_soak_policy_observed_threads, SoakConfig,
};
use tagwatch_analytics::{run_soak_durable_observed, DurableConfig, Policy, TickProtocol};
use tagwatch_obs::{to_prometheus_text, Obs};
use tagwatch_sim::StorageFaultPlan;

use crate::parse::CliError;

fn to_cli<E: std::fmt::Display>(e: E) -> CliError {
    CliError {
        message: e.to_string(),
    }
}

/// Reads and validates a `tagwatch-policy v1` document from disk,
/// pointing diagnostics at the file path.
pub(crate) fn load_policy(path: &str) -> Result<Policy, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError {
        message: format!("cannot read policy file `{path}`: {e}"),
    })?;
    Policy::parse_named(&text, path).map_err(to_cli)
}

/// Writes `content` to `path`, creating parent directories.
pub(crate) fn write_artifact(path: &str, content: &str) -> Result<(), CliError> {
    let path = PathBuf::from(path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(to_cli)?;
        }
    }
    std::fs::write(&path, content).map_err(to_cli)
}

/// The wall clock of the CLI's I/O shell: monotonic nanoseconds since
/// construction. Injected into the span recorder only on explicit
/// request (`--spans-wall`) because wall-decorated span artifacts are
/// *not* byte-stable — the library layers below never see this type,
/// which is what keeps the d1 determinism lint clean.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// Anchors the clock at "now".
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl tagwatch_obs::Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Everything the `soak` subcommand was asked to do; mirrors
/// [`crate::parse::Command::Soak`] field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakCmd {
    /// Root seed (the whole run is deterministic in it).
    pub seed: u64,
    /// Monitoring ticks to drive.
    pub ticks: u64,
    /// Routine-tick protocol (`true` = UTRP).
    pub utrp: bool,
    /// Report path override (default `results/soak_<seed>.json`).
    pub report: Option<String>,
    /// Where to write the metrics snapshot, if anywhere.
    pub metrics_out: Option<String>,
    /// Where to write the flight-recorder JSONL trace, if anywhere.
    pub trace_out: Option<String>,
    /// Where to write the Prometheus text exposition, if anywhere.
    pub prom_out: Option<String>,
    /// Where to write the span-tree JSONL, if anywhere.
    pub spans_out: Option<String>,
    /// Decorate spans with wall-clock nanoseconds (artifact is then
    /// not byte-stable).
    pub spans_wall: bool,
    /// Where to persist the durable write-ahead log, if anywhere.
    pub wal_out: Option<String>,
    /// Scripted crash: stop just before this tick.
    pub crash_at: Option<u64>,
    /// Path of a `tagwatch-policy v1` document to run under.
    pub policy: Option<String>,
    /// Worker threads for the session's round engine.
    pub threads: u64,
}

impl Default for SoakCmd {
    /// The parser's defaults for a bare `tagwatch-cli soak`.
    fn default() -> Self {
        SoakCmd {
            seed: 1,
            ticks: 5000,
            utrp: true,
            report: None,
            metrics_out: None,
            trace_out: None,
            prom_out: None,
            spans_out: None,
            spans_wall: false,
            wal_out: None,
            crash_at: None,
            policy: None,
            threads: 1,
        }
    }
}

/// Runs a soak and writes the JSON report (default path
/// `results/soak_<seed>.json`). Exits non-zero — via the returned
/// error — if any invariant was violated, so CI fails loudly.
///
/// The run is always instrumented: `--metrics-out` exports the full
/// metrics snapshot (violation and quarantine counts included, so the
/// exit status has queryable context), `--trace-out` the
/// flight-recorder JSONL window, `--prom-out` the Prometheus text
/// exposition of the whole registry, and `--spans-out` the cost-clock
/// span tree. All four artifacts are byte-deterministic in the seed
/// (spans excepted under `--spans-wall`, which decorates them with
/// I/O-shell wall-clock nanoseconds). On a violation the artifacts
/// are written *before* the error returns.
///
/// With `--wal-out` the run goes through the durable engine (same tick
/// sequence, same report, same telemetry) and persists its write-ahead
/// log — flushed before everything else, so even a violation exit
/// leaves a resumable artifact on disk. `--crash-at T` additionally
/// kills the run just before tick `T`, leaving exactly the bytes a
/// power cut at that instant would: the command then exits 0 (the kill
/// was scripted, not a failure) and points at `tagwatch-cli recover`.
///
/// # Errors
///
/// Returns a [`CliError`] for invalid configs, report I/O failures, or
/// invariant violations.
pub fn run_soak_command(cmd: SoakCmd) -> Result<String, CliError> {
    let SoakCmd {
        seed,
        ticks,
        utrp,
        report: report_path,
        metrics_out,
        trace_out,
        prom_out,
        spans_out,
        spans_wall,
        wal_out,
        crash_at,
        policy: policy_path,
        threads,
    } = cmd;
    let threads = usize::try_from(threads.max(1)).unwrap_or(usize::MAX);
    let policy = policy_path.as_deref().map(load_policy).transpose()?;
    let config = SoakConfig {
        seed,
        ticks,
        protocol: match &policy {
            Some(p) => p.protocol,
            None if utrp => TickProtocol::Utrp,
            None => TickProtocol::Trp,
        },
        ..SoakConfig::default()
    };
    let obs = Obs::new();
    if spans_wall {
        // Wall time enters here, at the I/O shell, and nowhere deeper.
        obs.set_span_clock(std::rc::Rc::new(WallClock::new()));
    }
    let report = if let Some(wal_path) = &wal_out {
        let mut fault = StorageFaultPlan::new();
        if let Some(t) = crash_at {
            fault = fault.crash_at_tick(t);
        }
        let durable = DurableConfig {
            soak: config,
            fault,
            policy: policy.clone(),
            ..DurableConfig::default()
        };
        let outcome = run_soak_durable_observed(&durable, &obs).map_err(to_cli)?;
        // The WAL lands on disk first: a violation (or the scripted
        // crash) must still leave a resumable artifact behind.
        tagwatch_store::io::write_bytes(wal_path, &outcome.wal).map_err(to_cli)?;
        match outcome.report {
            Some(report) => report,
            None => {
                let tick = outcome.interrupted_at.unwrap_or(0);
                return Ok(format!(
                    "soak interrupted at tick {tick} (scripted crash)\n\
                     WAL: {wal_path} ({} bytes)\n\
                     resume with: tagwatch-cli recover {wal_path}\n",
                    outcome.wal.len(),
                ));
            }
        }
    } else if let Some(policy) = &policy {
        run_soak_policy_observed_threads(&config, policy, &obs, threads).map_err(to_cli)?
    } else {
        run_soak_observed_threads(&config, &obs, threads).map_err(to_cli)?
    };

    let path: PathBuf = match report_path {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(format!("results/soak_{seed}.json")),
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(to_cli)?;
        }
    }
    std::fs::write(&path, report.to_json()).map_err(to_cli)?;
    if let Some(p) = &metrics_out {
        write_artifact(p, &obs.snapshot_json())?;
    }
    if let Some(p) = &trace_out {
        write_artifact(p, &obs.flight_jsonl())?;
    }
    if let Some(p) = &prom_out {
        write_artifact(p, &to_prometheus_text(&obs))?;
    }
    if let Some(p) = &spans_out {
        write_artifact(p, &obs.spans_jsonl())?;
    }

    let c = &report.counts;
    let pct = |q: f64| {
        report
            .latency_percentile(q)
            .map_or_else(|| "-".to_owned(), |v| format!("{v:.1}"))
    };
    let mut out = format!(
        "soak: {} {} ticks, seed {} -> {}\n\
         verdicts: {} intact / {} alarms / {} desynced\n\
         incidents: {} thefts, {} desync bursts, {} crashes\n\
         recoveries: {} resyncs, {} escalations ({} noise-only), {} quarantines\n\
         audits: {} ({:.2} per 1000 ticks, max {} in any 100 ticks)\n\
         recovery latency: {} samples, p50 {}, p90 {}, p99 {}\n\
         digest: fnv1a:{:016x}\n",
        match config.protocol {
            TickProtocol::Utrp => "UTRP",
            TickProtocol::Trp => "TRP",
        },
        ticks,
        seed,
        path.display(),
        c.intact,
        c.alarms,
        c.desynced,
        c.thefts,
        c.desync_bursts,
        c.crashes,
        c.resyncs,
        c.escalations,
        c.false_escalations,
        c.quarantines,
        c.audits,
        report.audit_rate_per_1000(),
        report.max_audits_in_window(100),
        report.recovery_latencies.len(),
        pct(0.50),
        pct(0.90),
        pct(0.99),
        report.digest(),
    );
    if let (Some(policy), Some(path)) = (&policy, &policy_path) {
        out.push_str(&format!("policy: site `{}` from {path}\n", policy.site));
    }
    out.push_str(&format!(
        "telemetry: {} violations, {} quarantine events, metrics digest fnv64:{:016x}\n",
        obs.counter(obs.m.soak_violations),
        obs.counter(obs.m.quarantine_events),
        obs.snapshot_digest(),
    ));
    if let Some(dump) = &report.flight_dump {
        out.push_str(&format!(
            "flight dump latched ({}): {} event(s) retained\n",
            dump.reason,
            dump.jsonl.lines().count(),
        ));
    }
    if !report.is_clean() {
        out.push_str("\nINVARIANT VIOLATIONS:\n");
        for v in &report.violations {
            out.push_str(&format!("  - {v}\n"));
        }
        return Err(CliError { message: out });
    }
    out.push_str("all soak invariants held\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_command_writes_a_report_and_summarizes() {
        let dir = std::env::temp_dir().join("tagwatch-soak-cli-test");
        let path = dir.join("soak_cli.json");
        let out = run_soak_command(SoakCmd {
            seed: 3,
            ticks: 60,
            report: Some(path.to_string_lossy().into_owned()),
            ..SoakCmd::default()
        })
        .expect("soak should be clean");
        assert!(out.contains("all soak invariants held"), "{out}");
        assert!(out.contains("digest: fnv1a:"));
        assert!(out.contains("telemetry: 0 violations"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"violations\": []"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_command_exports_deterministic_telemetry_artifacts() {
        let dir = std::env::temp_dir().join("tagwatch-soak-cli-telemetry-test");
        let paths = |tag: &str, ext: &str| dir.join(format!("{tag}.{ext}"));
        let mut artifacts = Vec::new();
        for tag in ["a", "b"] {
            let (metrics, trace, prom, spans) = (
                paths(tag, "metrics.json"),
                paths(tag, "trace.jsonl"),
                paths(tag, "prom.txt"),
                paths(tag, "spans.jsonl"),
            );
            run_soak_command(SoakCmd {
                seed: 5,
                ticks: 50,
                report: Some(paths(tag, "report.json").to_string_lossy().into_owned()),
                metrics_out: Some(metrics.to_string_lossy().into_owned()),
                trace_out: Some(trace.to_string_lossy().into_owned()),
                prom_out: Some(prom.to_string_lossy().into_owned()),
                spans_out: Some(spans.to_string_lossy().into_owned()),
                ..SoakCmd::default()
            })
            .expect("soak should be clean");
            artifacts.push((
                std::fs::read_to_string(&metrics).unwrap(),
                std::fs::read_to_string(&trace).unwrap(),
                std::fs::read_to_string(&prom).unwrap(),
                std::fs::read_to_string(&spans).unwrap(),
            ));
        }
        assert_eq!(artifacts[0], artifacts[1], "telemetry must be seed-stable");
        assert!(artifacts[0]
            .0
            .contains("\"schema\": \"tagwatch-obs-metrics-v1\""));
        assert!(artifacts[0].1.contains("\"type\":\"tick_completed\""));
        assert!(artifacts[0]
            .2
            .contains("# TYPE tagwatch_rounds_total counter"));
        assert!(artifacts[0].3.contains("\"kind\":\"session\""));
        assert!(
            artifacts[0].3.contains("\"wall_ns\":null"),
            "no --spans-wall: spans must stay undecorated"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spans_wall_decorates_the_span_artifact() {
        let dir = std::env::temp_dir().join("tagwatch-soak-cli-wall-test");
        let spans = dir.join("wall_spans.jsonl");
        run_soak_command(SoakCmd {
            seed: 5,
            ticks: 20,
            report: Some(dir.join("report.json").to_string_lossy().into_owned()),
            spans_out: Some(spans.to_string_lossy().into_owned()),
            spans_wall: true,
            ..SoakCmd::default()
        })
        .expect("soak should be clean");
        let jsonl = std::fs::read_to_string(&spans).unwrap();
        assert!(
            !jsonl.contains("\"wall_ns\":null"),
            "--spans-wall must stamp every span"
        );
        assert!(jsonl.contains("\"wall_ns\":"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_command_rejects_zero_ticks() {
        assert!(run_soak_command(SoakCmd {
            ticks: 0,
            report: Some("/tmp/unused.json".into()),
            ..SoakCmd::default()
        })
        .is_err());
    }

    #[test]
    fn soak_command_persists_a_recoverable_wal() {
        let dir = std::env::temp_dir().join("tagwatch-soak-cli-wal-test");
        let report = dir.join("report.json");
        let wal = dir.join("run.wal");
        let out = run_soak_command(SoakCmd {
            seed: 3,
            ticks: 60,
            report: Some(report.to_string_lossy().into_owned()),
            wal_out: Some(wal.to_string_lossy().into_owned()),
            ..SoakCmd::default()
        })
        .expect("soak should be clean");
        assert!(out.contains("all soak invariants held"), "{out}");
        let bytes = std::fs::read(&wal).unwrap();
        assert_eq!(&bytes[..4], b"TWAL");
        let resumed = tagwatch_analytics::resume_soak_durable(&bytes).unwrap();
        assert!(resumed.recovery.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_soak_writes_wal_and_reports_interruption() {
        let dir = std::env::temp_dir().join("tagwatch-soak-cli-crash-test");
        let wal = dir.join("crashed.wal");
        let out = run_soak_command(SoakCmd {
            seed: 3,
            ticks: 60,
            wal_out: Some(wal.to_string_lossy().into_owned()),
            crash_at: Some(33),
            ..SoakCmd::default()
        })
        .expect("a scripted crash is not a command failure");
        assert!(out.contains("interrupted at tick 33"), "{out}");
        assert!(out.contains("tagwatch-cli recover"), "{out}");
        assert!(wal.exists(), "the WAL must survive the kill");
        std::fs::remove_dir_all(&dir).ok();
    }
}
