//! # tagwatch-cli
//!
//! Command-line tooling over the `tagwatch` workspace: frame sizing,
//! detection math, Monte-Carlo simulations, and registry-snapshot
//! utilities, with a hand-rolled dependency-free argument parser.
//!
//! The binary is `tagwatch-cli`; every command is also exposed as a
//! library function returning its output as a `String`, which is how
//! the unit tests drive it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod faults;
pub mod inspect;
pub mod parse;
pub mod recover;
pub mod soak;

pub use commands::run;
pub use parse::{CliError, Command};
