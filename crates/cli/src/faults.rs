//! The `faults` subcommand: a named fault-scenario matrix.
//!
//! Each scenario runs a short UTRP monitoring schedule (three rounds
//! per trial) against an intact — or, for the theft control, robbed —
//! population while injecting one class of fault, and reports how the
//! server/session machinery behaved:
//!
//! * **alarm** — a round ended [`Verdict::NotIntact`] or errored
//!   (e.g. a truncated response). For fault-only scenarios these are
//!   *false* alarms; the fail-safe contract is that faults may cost
//!   false alarms or retries, never a silent false "intact".
//! * **desync** — a round was diagnosed as [`Verdict::Desynced`] and
//!   recovered via [`MonitorServer::resync_from_hypothesis`].
//! * **audit** — an undiagnosable failure forced a physical
//!   [`MonitorServer::resync_counters`] audit to continue.
//! * **recovered** — the trial's *final* round verified intact, i.e.
//!   monitoring got back on its feet after the fault.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch_core::faulty::run_honest_reader_with;
use tagwatch_core::utrp::attributed_round;
use tagwatch_core::{CoreError, MonitorServer, ServerConfig, Verdict};
use tagwatch_obs::Obs;
use tagwatch_sim::{
    Channel, ChannelConfig, Counter, FaultPlan, SeedSequence, TagId, TagPopulation,
};

use crate::parse::CliError;

/// Population size used by every scenario.
const N: usize = 60;
/// Tolerance `m` (the theft control steals `m + 1`).
const M: u64 = 3;
/// Confidence `alpha`.
const ALPHA: f64 = 0.9;
/// Rounds per trial: fault on round 0, then recovery headroom.
const ROUNDS: usize = 3;
/// Desync search window — generous, so a whole lost round's advance
/// (up to ~`N` announcements) stays diagnosable.
const DESYNC_WINDOW: u64 = 128;

/// The named scenarios, in display order.
const SCENARIOS: [Scenario; 8] = [
    Scenario::Baseline,
    Scenario::Theft,
    Scenario::UplinkLoss,
    Scenario::DownlinkLoss,
    Scenario::ReaderCrash,
    Scenario::Truncation,
    Scenario::ClockSkew,
    Scenario::DesyncRecovery,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// No faults, intact floor: nothing should ever fire.
    Baseline,
    /// No faults, `m + 1` tags stolen: detection must still work with
    /// the fault machinery in the loop.
    Theft,
    /// Probabilistic uplink reply loss on every round.
    UplinkLoss,
    /// Probabilistic downlink announcement loss on every round (the
    /// canonical counter-desync source).
    DownlinkLoss,
    /// Reader crashes mid-frame on round 0.
    ReaderCrash,
    /// Response truncated in transit on round 0.
    Truncation,
    /// Reported scan clock runs slow on round 0 (blown deadline).
    ClockSkew,
    /// Scripted single-tag announcement loss on round 0: the next
    /// round must come back `Desynced` and recover by hypothesis.
    DesyncRecovery,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::Theft => "theft(m+1)",
            Scenario::UplinkLoss => "uplink-loss",
            Scenario::DownlinkLoss => "downlink-loss",
            Scenario::ReaderCrash => "reader-crash",
            Scenario::Truncation => "truncation",
            Scenario::ClockSkew => "clock-skew",
            Scenario::DesyncRecovery => "desync-recovery",
        }
    }

    /// The channel model for one round of this scenario.
    fn channel(self) -> Channel {
        let config = match self {
            Scenario::UplinkLoss => ChannelConfig {
                reply_loss_prob: 0.02,
                ..ChannelConfig::default()
            },
            Scenario::DownlinkLoss => ChannelConfig {
                // Per-tag, per-announcement: a 60-tag round broadcasts
                // ~60 announcements, so this is ~0.7 missed
                // announcements per round — mostly zero or one victim.
                downlink_loss_prob: 0.0002,
                ..ChannelConfig::default()
            },
            _ => return Channel::ideal(),
        };
        Channel::with_config(config).expect("static probabilities are valid")
    }
}

/// Per-scenario tallies over all trials.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    alarms: u64,
    desyncs: u64,
    audits: u64,
    recovered: u64,
}

/// Runs the full scenario matrix and renders the report. With
/// `--metrics-out`, every round's verdict and recovery action also
/// streams into a telemetry registry whose deterministic snapshot is
/// written to the given path; `--prom-out` renders the same registry
/// as Prometheus text exposition. With `--policy`, the policy document's
/// desync window replaces the matrix's built-in one (the scenarios
/// drive the server layer directly, so the window is the knob a policy
/// owns here).
///
/// # Errors
///
/// Returns a [`CliError`] for an unreadable or invalid policy file, or
/// for internal protocol errors (a bug, not bad user input — the
/// parser validates the flags).
pub fn run_faults(
    quick: bool,
    trials: u64,
    seed: u64,
    metrics_out: Option<String>,
    prom_out: Option<String>,
    policy_path: Option<String>,
) -> Result<String, CliError> {
    if trials == 0 {
        return Err(CliError {
            message: "--trials must be at least 1".to_owned(),
        });
    }
    let policy = policy_path
        .as_deref()
        .map(crate::soak::load_policy)
        .transpose()?;
    let desync_window = policy.as_ref().map_or(DESYNC_WINDOW, |p| p.desync_window);
    let trials = if quick { trials.min(20) } else { trials };
    let obs = if metrics_out.is_some() || prom_out.is_some() {
        Obs::new()
    } else {
        Obs::disabled()
    };
    let seeds = SeedSequence::new(seed);
    let mut out = String::new();
    out.push_str(&format!(
        "fault scenario matrix: n={N}, m={M}, alpha={ALPHA}, {ROUNDS} rounds/trial, \
         {trials} trials/scenario, seed {seed}\n\
         (fault-only scenarios hold an intact floor: alarms there are FALSE alarms,\n\
          the fail-safe cost of never reporting a faulty round as intact)\n\n"
    ));
    if let (Some(policy), Some(path)) = (&policy, &policy_path) {
        out.push_str(&format!(
            "policy: site `{}` from {path} (desync window {desync_window})\n\n",
            policy.site
        ));
    }
    out.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>8} {:>10}\n",
        "scenario", "alarm", "desync", "audit", "recovered"
    ));
    for (i, scenario) in SCENARIOS.iter().enumerate() {
        let mut tally = Tally::default();
        for t in 0..trials {
            let trial_seed = seeds.seed_for((i as u64) << 32 | t);
            let result =
                run_trial(*scenario, trial_seed, desync_window, &obs).map_err(|e| CliError {
                    message: format!("{} trial {t}: {e}", scenario.name()),
                })?;
            tally.alarms += u64::from(result.alarmed);
            tally.desyncs += u64::from(result.desynced);
            tally.audits += u64::from(result.audited);
            tally.recovered += u64::from(result.recovered);
        }
        let rate = |count: u64| count as f64 / trials as f64;
        out.push_str(&format!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>10.3}\n",
            scenario.name(),
            rate(tally.alarms),
            rate(tally.desyncs),
            rate(tally.audits),
            rate(tally.recovered),
        ));
    }
    out.push_str(
        "\nexpectations: baseline alarms 0 and recovers 1; theft(m+1) alarms near 1;\n\
         desync-recovery desyncs 1 with audit 0 (hypothesis resync suffices).\n",
    );
    if let Some(path) = &metrics_out {
        crate::soak::write_artifact(path, &obs.snapshot_json())?;
        out.push_str(&format!(
            "metrics snapshot ({} rounds, digest fnv64:{:016x}) -> {path}\n",
            obs.counter(obs.m.rounds_total),
            obs.snapshot_digest(),
        ));
    }
    if let Some(path) = &prom_out {
        crate::soak::write_artifact(path, &tagwatch_obs::to_prometheus_text(&obs))?;
        out.push_str(&format!(
            "prometheus exposition ({} rounds) -> {path}\n",
            obs.counter(obs.m.rounds_total),
        ));
    }
    Ok(out)
}

/// What one trial of one scenario did.
#[derive(Debug, Clone, Copy)]
struct TrialResult {
    alarmed: bool,
    desynced: bool,
    audited: bool,
    recovered: bool,
}

fn run_trial(
    scenario: Scenario,
    seed: u64,
    desync_window: u64,
    obs: &Obs,
) -> Result<TrialResult, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut floor = TagPopulation::with_sequential_ids(N);
    let config = ServerConfig {
        desync_window,
        ..ServerConfig::default()
    };
    let mut server = MonitorServer::with_config(floor.ids(), M, ALPHA, config)?;
    if scenario == Scenario::Theft {
        floor.remove_random(M as usize + 1, &mut rng)?;
    }

    let timing = server.config().timing;
    let mut result = TrialResult {
        alarmed: false,
        desynced: false,
        audited: false,
        recovered: false,
    };

    for round in 0..ROUNDS {
        // A previous alarm leaves the mirror untrusted with no
        // hypothesis: only a physical audit gets monitoring going
        // again (hypothesis resyncs happen right after the verdict).
        if !server.counters_synced() {
            server.resync_counters(floor.iter().map(|t| (t.id(), t.counter())))?;
            result.audited = true;
            obs.inc(obs.m.audits_total);
        }
        let challenge = server.issue_utrp_challenge(&mut rng)?;
        let plan = round_plan(scenario, round, &server, &challenge)?;
        let channel = scenario.channel();
        let response =
            run_honest_reader_with(&mut floor, &challenge, &timing, &channel, &plan, &mut rng)?;
        obs.inc(obs.m.rounds_total);
        obs.inc(obs.m.rounds_utrp);
        match server.verify_utrp(challenge, &response) {
            Ok(report) => {
                obs.observe(obs.m.hamming_distance, report.mismatched_slots as f64);
                match report.verdict {
                    Verdict::Intact => {
                        obs.inc(obs.m.verify_intact);
                        if round == ROUNDS - 1 {
                            result.recovered = true;
                        }
                    }
                    Verdict::NotIntact => {
                        obs.inc(obs.m.verify_alarm);
                        result.alarmed = true;
                    }
                    Verdict::Desynced { .. } => {
                        obs.inc(obs.m.verify_desynced);
                        obs.inc(obs.m.resync_attempts);
                        result.desynced = true;
                        server.resync_from_hypothesis()?;
                    }
                }
            }
            // A malformed response (e.g. truncation) is an alarm; the
            // challenge is spent, so the field advanced while the
            // mirror did not — the *next* round sees a uniform lead.
            Err(CoreError::ResponseShapeMismatch { .. }) => {
                obs.inc(obs.m.verify_alarm);
                result.alarmed = true;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(result)
}

/// The scripted fault plan for one round of one scenario.
fn round_plan(
    scenario: Scenario,
    round: usize,
    server: &MonitorServer,
    challenge: &tagwatch_core::UtrpChallenge,
) -> Result<FaultPlan, CoreError> {
    if round != 0 {
        return Ok(FaultPlan::new());
    }
    Ok(match scenario {
        Scenario::ReaderCrash => {
            FaultPlan::new().crash_after_slot(challenge.frame_size().get() / 3)
        }
        Scenario::Truncation => FaultPlan::new().truncate_response(16),
        Scenario::ClockSkew => FaultPlan::new().skew_clock(10.0),
        Scenario::DesyncRecovery => {
            // The tag that replies in the first occupied slot misses the
            // round's last announcement: this round stays intact, but
            // its counter ends one short — the next round must be
            // diagnosed as a single-tag lag.
            let registry: Vec<(TagId, Counter)> = server
                .registered_ids()
                .into_iter()
                .map(|id| (id, server.counter_of(id).expect("registered")))
                .collect();
            let (dry, attribution) = attributed_round(&registry, challenge)?;
            let first = dry
                .bitstring
                .iter_ones()
                .next()
                .expect("a 60-tag round has occupied slots");
            let victim = attribution[first][0];
            FaultPlan::new().lose_announcement(dry.announcements - 1, [victim])
        }
        _ => FaultPlan::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(line: &str) -> Vec<f64> {
        line.split_whitespace()
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect()
    }

    fn scenario_line<'a>(report: &'a str, name: &str) -> &'a str {
        report
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("no `{name}` row in:\n{report}"))
    }

    #[test]
    fn matrix_runs_and_reports_every_scenario() {
        let report = run_faults(true, 5, 1, None, None, None).unwrap();
        for scenario in SCENARIOS {
            assert!(
                report.lines().any(|l| l.starts_with(scenario.name())),
                "missing `{}` in:\n{report}",
                scenario.name()
            );
        }
    }

    #[test]
    fn baseline_is_quiet_and_theft_detects() {
        let report = run_faults(true, 10, 2, None, None, None).unwrap();
        let baseline = rates(scenario_line(&report, "baseline"));
        assert_eq!(baseline, vec![0.0, 0.0, 0.0, 1.0], "{report}");
        let theft = rates(scenario_line(&report, "theft(m+1)"));
        assert!(theft[0] > 0.8, "theft detection too low: {report}");
    }

    #[test]
    fn desync_recovery_is_diagnosed_without_audits() {
        let report = run_faults(true, 10, 3, None, None, None).unwrap();
        let row = rates(scenario_line(&report, "desync-recovery"));
        let (alarm, desync, audit, recovered) = (row[0], row[1], row[2], row[3]);
        assert_eq!(alarm, 0.0, "{report}");
        assert_eq!(desync, 1.0, "{report}");
        assert_eq!(audit, 0.0, "{report}");
        assert_eq!(recovered, 1.0, "{report}");
    }

    #[test]
    fn crash_truncation_and_skew_alarm_but_recover() {
        let report = run_faults(true, 8, 4, None, None, None).unwrap();
        for name in ["reader-crash", "truncation", "clock-skew"] {
            let row = rates(scenario_line(&report, name));
            assert_eq!(row[0], 1.0, "{name} must alarm: {report}");
            assert_eq!(row[3], 1.0, "{name} must recover: {report}");
        }
    }

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let a = run_faults(true, 5, 7, None, None, None).unwrap();
        let b = run_faults(true, 5, 7, None, None, None).unwrap();
        assert_eq!(a, b);
    }
}
