//! The `recover` subcommand: warm-restart a soak from its write-ahead
//! log and print the verified report digest.
//!
//! ## Exit codes
//!
//! * **0** — the WAL was replayed and the run completed with all soak
//!   invariants held. This includes WALs with damaged tails: the
//!   damage is excised, attributed in the output (`recovery: ...`),
//!   and the lost ticks re-executed — recovery succeeding *is* the
//!   success case.
//! * **1** (via the returned [`CliError`]) — the WAL could not be
//!   read, its header is unrecoverable, its record sequence is
//!   malformed, replay diverged from the journal, or the completed run
//!   violated a soak invariant. Nothing is silently accepted.

use tagwatch_analytics::{resume_soak_durable_observed, ResumeOutcome};
use tagwatch_obs::Obs;

use crate::parse::CliError;
use crate::soak::write_artifact;

fn to_cli<E: std::fmt::Display>(e: E) -> CliError {
    CliError {
        message: e.to_string(),
    }
}

/// Reads the WAL at `path`, resumes it to completion, optionally
/// writes the finished JSON report, and renders a recovery summary
/// ending in the verified digest.
///
/// # Errors
///
/// Returns a [`CliError`] per the exit-code contract above.
pub fn run_recover_command(path: &str, report_out: Option<String>) -> Result<String, CliError> {
    let bytes = tagwatch_store::io::read_bytes(path).map_err(to_cli)?;
    let obs = Obs::new();
    let outcome = resume_soak_durable_observed(&bytes, &obs).map_err(to_cli)?;
    if let Some(p) = &report_out {
        write_artifact(p, &outcome.report.to_json())?;
    }
    let ResumeOutcome {
        report,
        recovery,
        resumed_from,
        replayed_ticks,
        wal,
        policy,
    } = outcome;

    let mut out = format!("recover: {path} ({} bytes read)\n", bytes.len());
    out.push_str(&format!(
        "policy: site `{}` (carried by the WAL)\n",
        policy.site
    ));
    if recovery.is_empty() {
        out.push_str("WAL tail intact: no corruption found\n");
    }
    for note in &recovery {
        out.push_str(&format!("recovery: {note}\n"));
    }
    out.push_str(&format!(
        "resumed from checkpoint tick {resumed_from}; replayed {replayed_ticks} recorded \
         tick(s), verified byte-identical; completed {} ticks ({} bytes of WAL)\n",
        report.log.len(),
        wal.len(),
    ));
    if let Some(p) = &report_out {
        out.push_str(&format!("report: {p}\n"));
    }
    out.push_str(&format!("digest: fnv1a:{:016x}\n", report.digest()));
    if !report.is_clean() {
        out.push_str("\nINVARIANT VIOLATIONS:\n");
        for v in &report.violations {
            out.push_str(&format!("  - {v}\n"));
        }
        return Err(CliError { message: out });
    }
    out.push_str("all soak invariants held\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soak::{run_soak_command, SoakCmd};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "tagwatch-recover-cli-{name}-{}",
            std::process::id()
        ))
    }

    #[test]
    fn recover_completes_a_crashed_soak_to_the_baseline_digest() {
        let dir = temp_dir("crash");
        let wal = dir.join("run.wal");
        let wal_str = wal.to_string_lossy().into_owned();

        // Baseline digest from the same soak run uninterrupted.
        let full = run_soak_command(SoakCmd {
            seed: 3,
            ticks: 60,
            report: Some(dir.join("full.json").to_string_lossy().into_owned()),
            ..SoakCmd::default()
        })
        .unwrap();
        let digest_line = full
            .lines()
            .find(|l| l.starts_with("digest:"))
            .unwrap()
            .to_owned();

        run_soak_command(SoakCmd {
            seed: 3,
            ticks: 60,
            wal_out: Some(wal_str.clone()),
            crash_at: Some(29),
            ..SoakCmd::default()
        })
        .unwrap();
        let report_path = dir.join("recovered.json");
        let out = run_recover_command(&wal_str, Some(report_path.to_string_lossy().into_owned()))
            .expect("clean kill must recover");
        assert!(out.contains("WAL tail intact"), "{out}");
        assert!(out.contains("resumed from checkpoint tick 25"), "{out}");
        assert!(out.contains(&digest_line), "{out}\nvs {digest_line}");
        assert!(out.contains("all soak invariants held"), "{out}");
        assert!(report_path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_attributes_a_damaged_tail() {
        let dir = temp_dir("damage");
        let wal = dir.join("run.wal");
        let wal_str = wal.to_string_lossy().into_owned();
        run_soak_command(SoakCmd {
            seed: 3,
            ticks: 60,
            wal_out: Some(wal_str.clone()),
            crash_at: Some(40),
            ..SoakCmd::default()
        })
        .unwrap();
        // Chop the tail the way a truncated flush would.
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.truncate(bytes.len() - 31);
        std::fs::write(&wal, &bytes).unwrap();

        let out = run_recover_command(&wal_str, None).expect("damage must be survivable");
        assert!(out.contains("recovery: "), "{out}");
        assert!(!out.contains("WAL tail intact"), "{out}");
        assert!(out.contains("digest: fnv1a:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_resumes_a_crashed_policy_run_under_the_same_policy() {
        let dir = temp_dir("policy");
        std::fs::create_dir_all(&dir).unwrap();
        let policy = tagwatch_analytics::Policy {
            site: "dock-9".into(),
            alarms_to_escalate: 4,
            ..Default::default()
        };
        let policy_path = dir.join("dock9.twp");
        std::fs::write(&policy_path, policy.to_text()).unwrap();
        let policy_str = policy_path.to_string_lossy().into_owned();

        // Baseline: the same policy run uninterrupted.
        let full = run_soak_command(SoakCmd {
            seed: 7,
            ticks: 60,
            utrp: false,
            report: Some(dir.join("full.json").to_string_lossy().into_owned()),
            policy: Some(policy_str.clone()),
            ..SoakCmd::default()
        })
        .unwrap();
        let digest_line = full
            .lines()
            .find(|l| l.starts_with("digest:"))
            .unwrap()
            .to_owned();

        let wal = dir.join("run.wal");
        let wal_str = wal.to_string_lossy().into_owned();
        run_soak_command(SoakCmd {
            seed: 7,
            ticks: 60,
            utrp: false,
            wal_out: Some(wal_str.clone()),
            crash_at: Some(31),
            policy: Some(policy_str),
            ..SoakCmd::default()
        })
        .unwrap();
        let out = run_recover_command(&wal_str, None).expect("crashed policy run must recover");
        assert!(out.contains("policy: site `dock-9`"), "{out}");
        assert!(out.contains(&digest_line), "{out}\nvs {digest_line}");
        assert!(out.contains("all soak invariants held"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_missing_and_garbage_files() {
        let dir = temp_dir("garbage");
        let missing = dir.join("nope.wal");
        assert!(run_recover_command(&missing.to_string_lossy(), None).is_err());

        let junk = dir.join("junk.wal");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&junk, b"not a wal at all").unwrap();
        let e = run_recover_command(&junk.to_string_lossy(), None).unwrap_err();
        assert!(e.message.contains("TWAL"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
