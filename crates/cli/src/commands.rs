//! Command execution: each CLI command rendered to a `String`.

use tagwatch_analytics::{trp_detection_trial, utrp_detection_cell, Proportion};
use tagwatch_core::math::detection::{detection_probability, EmptySlotModel};
use tagwatch_core::math::utrp::{sync_horizon, utrp_detection_probability};
use tagwatch_core::registry::RegistrySnapshot;
use tagwatch_core::{trp_frame_size, utrp_frame_size, MonitorParams, MonitorServer, UtrpSizing};
use tagwatch_sim::{SeedSequence, TagId};

use crate::parse::{CliError, Command};

/// Executes a parsed command, returning its stdout text.
///
/// # Errors
///
/// Returns a user-facing [`CliError`] for invalid parameter
/// combinations (e.g. `m >= n`).
pub fn run(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(HELP.to_owned()),
        Command::SizeTrp { n, m, alpha } => {
            let params = params(n, m, alpha)?;
            let f = trp_frame_size(&params).map_err(to_cli)?;
            let g = detection_probability(n, m + 1, f.get(), EmptySlotModel::Poisson);
            Ok(format!(
                "TRP frame (Eq. 2): {} for n={n}, m={m}, alpha={alpha}\n\
                 detection probability at that frame: {g:.4}\n",
                f
            ))
        }
        Command::SizeUtrp { n, m, alpha, c } => {
            let params = params(n, m, alpha)?;
            let sizing = UtrpSizing {
                sync_budget: c,
                safety_pad: 8,
            };
            let f = utrp_frame_size(&params, sizing).map_err(to_cli)?;
            let d = utrp_detection_probability(n, m, f.get(), c, EmptySlotModel::Poisson);
            Ok(format!(
                "UTRP frame (Eq. 3 + pad 8): {} for n={n}, m={m}, alpha={alpha}, c={c}\n\
                 sync horizon c' = {:.1} slots; detection at that frame: {d:.4}\n",
                f,
                sync_horizon(n, m, f.get(), c)
            ))
        }
        Command::Detection { n, x, f } => {
            if x > n {
                return Err(CliError {
                    message: format!("x = {x} exceeds n = {n}"),
                });
            }
            if f == 0 {
                return Err(CliError {
                    message: "f must be at least 1".to_owned(),
                });
            }
            let poisson = detection_probability(n, x, f, EmptySlotModel::Poisson);
            let exact = detection_probability(n, x, f, EmptySlotModel::Exact);
            Ok(format!(
                "g({n}, {x}, {f}) = {poisson:.6}  (paper's Poisson form)\n\
                 exact empty-slot model:   {exact:.6}\n"
            ))
        }
        Command::SimulateTrp { n, m, trials, seed } => {
            let params = params(n, m, 0.95)?;
            let f = trp_frame_size(&params).map_err(to_cli)?;
            let seeds = SeedSequence::new(seed);
            let detected = (0..trials)
                .filter(|&t| trp_detection_trial(n, m, f, seeds.seed_for(t)))
                .count() as u64;
            let p = Proportion::new(detected, trials);
            Ok(format!(
                "TRP simulation: n={n}, steal m+1={}, frame {} (alpha=0.95)\n\
                 detection: {p}\n",
                m + 1,
                f
            ))
        }
        Command::SimulateUtrp {
            n,
            m,
            budget,
            trials,
            seed,
        } => {
            let params = params(n, m, 0.95)?;
            if m + 1 >= n {
                return Err(CliError {
                    message: "utrp needs n > m + 1".to_owned(),
                });
            }
            let sizing = UtrpSizing {
                sync_budget: budget,
                safety_pad: 8,
            };
            let f = utrp_frame_size(&params, sizing).map_err(to_cli)?;
            let detected = utrp_detection_cell(n, m, f, budget, trials, SeedSequence::new(seed));
            let p = Proportion::new(detected, trials);
            Ok(format!(
                "UTRP simulation: n={n}, colluders steal m+1={}, c={budget}, frame {}\n\
                 detection vs best-strategy colluders: {p}\n",
                m + 1,
                f
            ))
        }
        Command::Identify { n, steal, seed } => {
            use rand::SeedableRng;
            use tagwatch_core::identify::{identify_missing, IdentifyConfig};
            use tagwatch_core::trp::observed_bitstring;
            use tagwatch_sim::TagPopulation;

            if steal >= n {
                return Err(CliError {
                    message: format!("cannot steal {steal} of {n} tags"),
                });
            }
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut floor = TagPopulation::with_sequential_ids(n as usize);
            let registry = floor.ids();
            let stolen = floor
                .remove_random(steal as usize, &mut rng)
                .map_err(to_cli)?;
            let outcome = identify_missing(
                &registry,
                IdentifyConfig::default(),
                &mut rng,
                |challenge| Ok(observed_bitstring(&floor.ids(), challenge)),
            )
            .map_err(to_cli)?;
            let mut found: Vec<String> = outcome.missing.iter().map(ToString::to_string).collect();
            found.sort();
            let mut expected: Vec<String> = stolen.iter().map(|t| t.id().to_string()).collect();
            expected.sort();
            Ok(format!(
                "identification over n={n}, {steal} stolen:\n\
                 rounds: {}, slots: {}, unresolved: {}\n\
                 missing found: {}\n\
                 ground truth:  {}\n\
                 match: {}\n",
                outcome.rounds,
                outcome.slots_used,
                outcome.unresolved.len(),
                found.join(" "),
                expected.join(" "),
                if found == expected {
                    "exact"
                } else {
                    "MISMATCH"
                }
            ))
        }
        Command::Faults {
            quick,
            trials,
            seed,
            metrics_out,
            prom_out,
            policy,
        } => crate::faults::run_faults(quick, trials, seed, metrics_out, prom_out, policy),
        Command::Soak {
            seed,
            ticks,
            utrp,
            report,
            metrics_out,
            trace_out,
            prom_out,
            spans_out,
            spans_wall,
            wal_out,
            crash_at,
            policy,
            threads,
        } => crate::soak::run_soak_command(crate::soak::SoakCmd {
            seed,
            ticks,
            utrp,
            report,
            metrics_out,
            trace_out,
            prom_out,
            spans_out,
            spans_wall,
            wal_out,
            crash_at,
            policy,
            threads,
        }),
        Command::Recover { path, report } => crate::recover::run_recover_command(&path, report),
        Command::Inspect { path } => crate::inspect::run_inspect(&path),
        Command::InspectDiff { a, b } => crate::inspect::run_inspect_diff(&a, &b),
        Command::RegistryNew { n, m, alpha } => {
            let ids: Vec<TagId> = (1..=n).map(TagId::from).collect();
            let server = MonitorServer::new(ids, m, alpha).map_err(to_cli)?;
            Ok(server.snapshot().to_text())
        }
        Command::RegistryInfo { text } => {
            let snap = RegistrySnapshot::from_text(&text).map_err(to_cli)?;
            let max_ct = snap
                .entries
                .iter()
                .map(|(_, ct)| ct.get())
                .max()
                .unwrap_or(0);
            Ok(format!(
                "registry: {} tags, m={}, alpha={}, counters {} (max counter {})\n",
                snap.entries.len(),
                snap.tolerance,
                snap.alpha,
                if snap.counters_synced {
                    "synced"
                } else {
                    "DESYNCED - physical audit required"
                },
                max_ct
            ))
        }
    }
}

fn params(n: u64, m: u64, alpha: f64) -> Result<MonitorParams, CliError> {
    MonitorParams::new(n, m, alpha).map_err(to_cli)
}

fn to_cli<E: std::fmt::Display>(e: E) -> CliError {
    CliError {
        message: e.to_string(),
    }
}

/// The `help` text.
pub const HELP: &str = "\
tagwatch-cli - missing-RFID-tag monitoring toolbox (Tan, Sheng & Li, ICDCS 2008)

USAGE:
  tagwatch-cli size trp  <n> <m> <alpha>            Eq. 2 frame size
  tagwatch-cli size utrp <n> <m> <alpha> [c]        Eq. 3 frame size (+8 pad)
  tagwatch-cli detection <n> <x> <f>                evaluate g(n, x, f)
  tagwatch-cli simulate trp  <n> <m> [--trials T] [--seed S]
  tagwatch-cli simulate utrp <n> <m> [--budget C] [--trials T] [--seed S]
  tagwatch-cli identify <n> [--steal K] [--seed S]  run missing-tag identification
  tagwatch-cli faults [--quick] [--trials T] [--seed S] [--metrics-out PATH]
                      [--prom-out PATH] [--policy FILE]
                                                    fault-scenario matrix (alarm /
                                                    desync / recovery rates)
  tagwatch-cli soak [--seed S] [--ticks T] [--protocol trp|utrp] [--report PATH]
                    [--metrics-out PATH] [--trace-out PATH]
                    [--prom-out PATH] [--spans-out PATH] [--spans-wall]
                    [--wal-out PATH] [--crash-at T] [--policy FILE]
                    [--threads N]
                                                    long-horizon soak: Markov channel,
                                                    scripted incidents, invariant
                                                    checks, JSON latency report, and
                                                    optional telemetry exports.
                                                    --prom-out renders the metrics
                                                    registry as Prometheus text;
                                                    --spans-out writes the cost-clock
                                                    span tree (session > tick > round)
                                                    as JSONL; --spans-wall decorates
                                                    it with wall-clock nanoseconds
                                                    (artifact no longer byte-stable);
                                                    --wal-out journals the run to a
                                                    durable write-ahead log (flushed
                                                    even on a violation exit);
                                                    --crash-at kills the run before
                                                    tick T, leaving a resumable WAL;
                                                    --policy runs the session under a
                                                    tagwatch-policy v1 document (the
                                                    WAL carries it, so recover replays
                                                    under the same policy);
                                                    --threads scans rounds on a worker
                                                    pool (report bytes identical at
                                                    any count)
  tagwatch-cli recover <wal> [--report PATH]        warm-restart a soak from its WAL,
                                                    re-verify every recorded tick, run
                                                    to completion, print the verified
                                                    digest. exit 0: recovered (damaged
                                                    tails are excised and attributed);
                                                    exit 1: unreadable WAL, malformed
                                                    records, replay divergence, or
                                                    invariant violations
  tagwatch-cli inspect <path>                       summarize an exported artifact
                                                    (metrics snapshot, JSONL event
                                                    trace, span tree, or
                                                    tagwatch-policy v1 document,
                                                    auto-detected)
  tagwatch-cli inspect diff <a> <b>                 compare two artifacts of the same
                                                    kind and report the first
                                                    divergence (event, span, or
                                                    metric) - the postmortem tool for
                                                    two runs that should have been
                                                    identical
  tagwatch-cli registry new <n> <m> <alpha>         print a fresh registry snapshot
  tagwatch-cli registry info < snapshot.txt         summarize a snapshot from stdin
  tagwatch-cli help

EXAMPLES:
  tagwatch-cli size trp 1000 10 0.95
  tagwatch-cli simulate utrp 500 5 --budget 20 --trials 1000
  tagwatch-cli soak --ticks 500 --metrics-out results/soak_metrics.json
  tagwatch-cli soak --ticks 200 --wal-out results/run.wal --crash-at 137
  tagwatch-cli recover results/run.wal --report results/recovered.json
  tagwatch-cli soak --ticks 200 --prom-out results/soak.prom --spans-out results/spans.jsonl
  tagwatch-cli inspect results/soak_metrics.json
  tagwatch-cli inspect diff results/spans_a.jsonl results/spans_b.jsonl
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_mentions_every_command() {
        let text = run(Command::Help).unwrap();
        for word in [
            "size trp",
            "size utrp",
            "detection",
            "simulate",
            "faults",
            "soak",
            "recover",
            "inspect",
            "inspect diff",
            "--metrics-out",
            "--trace-out",
            "--prom-out",
            "--spans-out",
            "--spans-wall",
            "--wal-out",
            "--crash-at",
            "--policy",
            "--threads",
            "registry",
        ] {
            assert!(text.contains(word), "help missing `{word}`");
        }
    }

    #[test]
    fn size_trp_matches_library() {
        let out = run(Command::SizeTrp {
            n: 1000,
            m: 10,
            alpha: 0.95,
        })
        .unwrap();
        let f = trp_frame_size(&MonitorParams::new(1000, 10, 0.95).unwrap()).unwrap();
        assert!(out.contains(&format!("{f}")), "{out}");
    }

    #[test]
    fn size_utrp_reports_horizon() {
        let out = run(Command::SizeUtrp {
            n: 500,
            m: 5,
            alpha: 0.95,
            c: 20,
        })
        .unwrap();
        assert!(out.contains("sync horizon"));
        assert!(out.contains("c=20"));
    }

    #[test]
    fn detection_prints_both_models() {
        let out = run(Command::Detection {
            n: 500,
            x: 6,
            f: 700,
        })
        .unwrap();
        assert!(out.contains("Poisson"));
        assert!(out.contains("exact"));
    }

    #[test]
    fn detection_validates() {
        assert!(run(Command::Detection { n: 5, x: 6, f: 10 }).is_err());
        assert!(run(Command::Detection { n: 5, x: 1, f: 0 }).is_err());
    }

    #[test]
    fn simulate_trp_reports_a_rate_near_alpha() {
        let out = run(Command::SimulateTrp {
            n: 200,
            m: 5,
            trials: 300,
            seed: 1,
        })
        .unwrap();
        // "detection: 0.95xx (…)" — parse the rate back out.
        let rate: f64 = out
            .split("detection: ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(rate > 0.9, "{out}");
    }

    #[test]
    fn simulate_utrp_runs() {
        let out = run(Command::SimulateUtrp {
            n: 150,
            m: 5,
            budget: 20,
            trials: 100,
            seed: 1,
        })
        .unwrap();
        assert!(out.contains("best-strategy colluders"));
    }

    #[test]
    fn identify_recovers_the_stolen_set() {
        let out = run(Command::Identify {
            n: 200,
            steal: 7,
            seed: 3,
        })
        .unwrap();
        assert!(out.contains("match: exact"), "{out}");
        assert!(out.contains("unresolved: 0"), "{out}");
    }

    #[test]
    fn identify_validates_steal_count() {
        assert!(run(Command::Identify {
            n: 5,
            steal: 5,
            seed: 1
        })
        .is_err());
    }

    #[test]
    fn registry_round_trip_through_cli() {
        let snapshot = run(Command::RegistryNew {
            n: 25,
            m: 2,
            alpha: 0.9,
        })
        .unwrap();
        let info = run(Command::RegistryInfo { text: snapshot }).unwrap();
        assert!(info.contains("25 tags"));
        assert!(info.contains("synced"));
    }

    #[test]
    fn invalid_params_surface_as_cli_errors() {
        assert!(run(Command::SizeTrp {
            n: 5,
            m: 5,
            alpha: 0.95
        })
        .is_err());
        assert!(run(Command::SimulateUtrp {
            n: 3,
            m: 2,
            budget: 20,
            trials: 10,
            seed: 1
        })
        .is_err());
    }
}
