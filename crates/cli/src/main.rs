//! The `tagwatch-cli` binary: parse args, dispatch, print.

#![forbid(unsafe_code)]

use std::io::Read;
use std::process::ExitCode;

use tagwatch_cli::{parse, run, Command};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // `registry info` streams the snapshot from stdin.
    let command = match command {
        Command::RegistryInfo { .. } => {
            let mut text = String::new();
            if std::io::stdin().read_to_string(&mut text).is_err() {
                eprintln!("error: failed to read snapshot from stdin");
                return ExitCode::FAILURE;
            }
            Command::RegistryInfo { text }
        }
        other => other,
    };

    match run(command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
