//! The `inspect` subcommand: a human-oriented summary of the
//! artifacts the other commands export or consume.
//!
//! Three artifact kinds exist, and the file content disambiguates them:
//!
//! * a **metrics snapshot** (`--metrics-out`) carries the
//!   `tagwatch-obs-metrics-v1` schema marker — summarized as its
//!   non-zero counters/gauges, histogram populations, flight-ring
//!   state, and embedded digest;
//! * a **flight-recorder trace** (`--trace-out`) is JSONL, one event
//!   object per line — summarized as per-type counts plus the head and
//!   tail of the retained window;
//! * a **policy document** (`--policy`) opens with the
//!   `tagwatch-policy v1` header — validated and echoed back in
//!   canonical form, so `inspect` shows the effective policy exactly
//!   as a session would interpret it.
//!
//! The telemetry formats are hand-rolled with fixed field order (the
//! workspace has no serde), so the summaries here parse them with
//! plain string operations rather than a JSON parser — intentionally:
//! anything the simple scan cannot read would also break the
//! byte-stability contract the exporters promise.

use std::collections::BTreeMap;

use tagwatch_analytics::{Policy, POLICY_HEADER};

use crate::parse::CliError;

/// The schema marker every metrics snapshot carries.
const METRICS_SCHEMA: &str = "tagwatch-obs-metrics";

/// Reads and summarizes a telemetry artifact.
///
/// # Errors
///
/// Returns a [`CliError`] if the file cannot be read or matches
/// neither artifact shape.
pub fn run_inspect(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError {
        message: format!("cannot read `{path}`: {e}"),
    })?;
    if looks_like_policy(&text) {
        summarize_policy(path, &text)
    } else if text.contains(METRICS_SCHEMA) {
        Ok(summarize_metrics(path, &text))
    } else if looks_like_trace(&text) {
        Ok(summarize_trace(path, &text))
    } else {
        Err(CliError {
            message: format!(
                "`{path}` is neither a metrics snapshot (no `{METRICS_SCHEMA}` marker), \
                 nor a JSONL event trace, nor a `{POLICY_HEADER}` document"
            ),
        })
    }
}

/// A policy document's first significant line (comments and blanks
/// are insignificant, exactly as the parser treats them) is the
/// `tagwatch-policy v1` header.
fn looks_like_policy(text: &str) -> bool {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        == Some(POLICY_HEADER)
}

/// Validates a policy document and prints its canonical form — the
/// effective policy, independent of comments or section ordering in
/// the source file.
fn summarize_policy(path: &str, text: &str) -> Result<String, CliError> {
    let policy = Policy::parse_named(text, path).map_err(|e| CliError {
        message: e.to_string(),
    })?;
    let mut out = format!(
        "{path}: policy document (site `{}`, valid)\neffective policy:\n",
        policy.site
    );
    for line in policy.to_text().lines() {
        out.push_str(&format!("  {line}\n"));
    }
    Ok(out)
}

/// A trace is JSONL of event objects: every non-empty line starts an
/// object and declares a `"seq"` field first.
fn looks_like_trace(text: &str) -> bool {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(first) => first.trim_start().starts_with("{\"seq\":"),
        None => false,
    }
}

/// Pulls the value text of `"name": value` off a snapshot body line.
fn field_value(line: &str) -> Option<(&str, &str)> {
    let trimmed = line.trim();
    let rest = trimmed.strip_prefix('"')?;
    let (name, rest) = rest.split_once("\":")?;
    Some((name, rest.trim().trim_end_matches(',')))
}

fn summarize_metrics(path: &str, text: &str) -> String {
    let mut out = format!("{path}: metrics snapshot\n");
    let mut section = "";
    let mut zero_counters = 0u64;
    for line in text.lines() {
        let trimmed = line.trim();
        match trimmed {
            "\"counters\": {" => {
                section = "counters";
                out.push_str("counters (non-zero):\n");
                continue;
            }
            "\"gauges\": {" => {
                if zero_counters > 0 {
                    out.push_str(&format!("  ({zero_counters} more at zero)\n"));
                }
                section = "gauges";
                out.push_str("gauges:\n");
                continue;
            }
            "\"histograms\": {" => {
                section = "histograms";
                out.push_str("histograms:\n");
                continue;
            }
            _ => {}
        }
        let Some((name, value)) = field_value(line) else {
            continue;
        };
        match (section, name) {
            (_, "flight") => out.push_str(&format!("flight ring: {value}\n")),
            (_, "digest") => out.push_str(&format!("digest: {value}\n")),
            ("counters", _) => {
                if value == "0" {
                    zero_counters += 1;
                } else {
                    out.push_str(&format!("  {name:<24} {value}\n"));
                }
            }
            ("gauges", _) => out.push_str(&format!("  {name:<24} {value}\n")),
            ("histograms", _) => {
                // `{"lo": .., "hi": .., "bins": [..], .., "count": N}`:
                // the trailing count is the population.
                let count = value
                    .rsplit("\"count\": ")
                    .next()
                    .map_or("?", |v| v.trim_end_matches(['}', ',']));
                out.push_str(&format!("  {name:<24} {count} sample(s)\n"));
            }
            _ => {}
        }
    }
    out
}

/// Pulls `"type":"x"` out of one event line.
fn event_type(line: &str) -> &str {
    line.split("\"type\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("?")
}

fn summarize_trace(path: &str, text: &str) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut by_type: BTreeMap<&str, u64> = BTreeMap::new();
    for line in &lines {
        *by_type.entry(event_type(line)).or_insert(0) += 1;
    }
    let mut out = format!("{path}: event trace, {} event(s)\n", lines.len());
    out.push_str("events by type:\n");
    for (kind, count) in &by_type {
        out.push_str(&format!("  {kind:<24} {count}\n"));
    }
    const SHOW: usize = 3;
    if !lines.is_empty() {
        out.push_str("first:\n");
        for line in lines.iter().take(SHOW) {
            out.push_str(&format!("  {line}\n"));
        }
        if lines.len() > SHOW {
            if lines.len() > 2 * SHOW {
                out.push_str(&format!("  ... {} more ...\n", lines.len() - 2 * SHOW));
            }
            out.push_str("last:\n");
            let tail_start = lines.len().saturating_sub(SHOW).max(SHOW);
            for line in &lines[tail_start..] {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_obs::{Obs, ObsEvent, ProtoKind, VerdictKind};

    fn sample_obs() -> Obs {
        let obs = Obs::new();
        obs.inc(obs.m.rounds_total);
        obs.inc(obs.m.rounds_utrp);
        obs.set_gauge(obs.m.last_frame_size, 64);
        obs.observe(obs.m.frame_size, 64.0);
        obs.emit(ObsEvent::RoundCompleted {
            proto: ProtoKind::Utrp,
            frame: 64,
            occupied: 12,
            reseeds: 11,
            elapsed_us: 900,
        });
        obs.emit(ObsEvent::Verified {
            proto: ProtoKind::Utrp,
            verdict: VerdictKind::Intact,
            mismatched: 0,
            late: false,
        });
        obs
    }

    #[test]
    fn inspects_a_metrics_snapshot() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        std::fs::write(&path, sample_obs().snapshot_json()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("metrics snapshot"), "{out}");
        assert!(out.contains("rounds_total"), "{out}");
        assert!(out.contains("more at zero"), "{out}");
        assert!(out.contains("last_frame_size"), "{out}");
        assert!(out.contains("frame_size"), "{out}");
        assert!(out.contains("digest: \"fnv64:"), "{out}");
        assert!(
            !out.contains("rounds_trp"),
            "zero counters are elided: {out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspects_an_event_trace() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, sample_obs().flight_jsonl()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("event trace, 2 event(s)"), "{out}");
        assert!(out.contains("round_completed"), "{out}");
        assert!(out.contains("verified"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspects_a_policy_document() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("site.twp");
        std::fs::write(&path, Policy::default().to_text()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("policy document"), "{out}");
        assert!(out.contains("valid"), "{out}");
        assert!(out.contains("effective policy:"), "{out}");
        assert!(out.contains("tagwatch-policy v1"), "{out}");

        // A malformed document is detected as a policy and rejected
        // with the parser's diagnostic, not the generic "neither" error.
        let bad = dir.join("bad.twp");
        std::fs::write(
            &bad,
            "tagwatch-policy v1\n@section thresholds\nalarms_to_escalate nope\n",
        )
        .unwrap();
        let e = run_inspect(&bad.to_string_lossy()).unwrap_err();
        assert!(!e.message.contains("neither"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_missing_and_unrecognized_files() {
        let e = run_inspect("/nonexistent/nothing.json").unwrap_err();
        assert!(e.message.contains("cannot read"));

        let dir = std::env::temp_dir().join("tagwatch-inspect-bad-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "hello world\n").unwrap();
        let e = run_inspect(&path.to_string_lossy()).unwrap_err();
        assert!(e.message.contains("neither"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
