//! The `inspect` subcommand: a human-oriented summary of the
//! artifacts the other commands export or consume, plus `inspect
//! diff`, the postmortem tool for "these two runs should have been
//! identical".
//!
//! Four artifact kinds exist, and the file content disambiguates them:
//!
//! * a **metrics snapshot** (`--metrics-out`) carries the
//!   `tagwatch-obs-metrics-v1` schema marker — summarized as its
//!   non-zero counters/gauges, histogram populations, flight-ring
//!   state, and embedded digest;
//! * a **flight-recorder trace** (`--trace-out`) is JSONL, one event
//!   object per line — summarized as per-type counts plus the head and
//!   tail of the retained window;
//! * a **span tree** (`--spans-out`) is JSONL of `{"span": ...}` nodes
//!   plus a `{"rollup": ...}` trailer — rendered as an indented
//!   session → tick → round tree with per-phase cost attribution;
//! * a **policy document** (`--policy`) opens with the
//!   `tagwatch-policy v1` header — validated and echoed back in
//!   canonical form, so `inspect` shows the effective policy exactly
//!   as a session would interpret it.
//!
//! The telemetry formats are hand-rolled with fixed field order (the
//! workspace has no serde), so the summaries here parse them with
//! plain string operations rather than a JSON parser — intentionally:
//! anything the simple scan cannot read would also break the
//! byte-stability contract the exporters promise. That same contract
//! is what makes `inspect diff` sound: two clean runs of the same
//! seed produce byte-identical artifacts, so the *first differing
//! line* is the exact event where two runs parted ways, not noise.

use std::collections::BTreeMap;

use tagwatch_analytics::{Policy, POLICY_HEADER};

use crate::parse::CliError;

/// The schema marker every metrics snapshot carries.
const METRICS_SCHEMA: &str = "tagwatch-obs-metrics";

/// What kind of artifact a file's content declares it to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArtifactKind {
    Policy,
    Metrics,
    Trace,
    Spans,
}

impl ArtifactKind {
    fn name(self) -> &'static str {
        match self {
            ArtifactKind::Policy => "policy document",
            ArtifactKind::Metrics => "metrics snapshot",
            ArtifactKind::Trace => "event trace",
            ArtifactKind::Spans => "span tree",
        }
    }
}

/// Sniffs the artifact kind from file content.
fn detect(text: &str) -> Option<ArtifactKind> {
    if looks_like_policy(text) {
        Some(ArtifactKind::Policy)
    } else if text.contains(METRICS_SCHEMA) {
        Some(ArtifactKind::Metrics)
    } else if looks_like_trace(text) {
        Some(ArtifactKind::Trace)
    } else if looks_like_spans(text) {
        Some(ArtifactKind::Spans)
    } else {
        None
    }
}

fn read_artifact(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError {
        message: format!("cannot read `{path}`: {e}"),
    })
}

/// Reads and summarizes a telemetry artifact.
///
/// # Errors
///
/// Returns a [`CliError`] if the file cannot be read or matches
/// no known artifact shape.
pub fn run_inspect(path: &str) -> Result<String, CliError> {
    let text = read_artifact(path)?;
    match detect(&text) {
        Some(ArtifactKind::Policy) => summarize_policy(path, &text),
        Some(ArtifactKind::Metrics) => Ok(summarize_metrics(path, &text)),
        Some(ArtifactKind::Trace) => Ok(summarize_trace(path, &text)),
        Some(ArtifactKind::Spans) => Ok(summarize_spans(path, &text)),
        None => Err(CliError {
            message: format!(
                "`{path}` is neither a metrics snapshot (no `{METRICS_SCHEMA}` marker), \
                 nor a JSONL event trace, nor a span tree, nor a `{POLICY_HEADER}` document"
            ),
        }),
    }
}

/// A policy document's first significant line (comments and blanks
/// are insignificant, exactly as the parser treats them) is the
/// `tagwatch-policy v1` header.
fn looks_like_policy(text: &str) -> bool {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        == Some(POLICY_HEADER)
}

/// Validates a policy document and prints its canonical form — the
/// effective policy, independent of comments or section ordering in
/// the source file.
fn summarize_policy(path: &str, text: &str) -> Result<String, CliError> {
    let policy = Policy::parse_named(text, path).map_err(|e| CliError {
        message: e.to_string(),
    })?;
    let mut out = format!(
        "{path}: policy document (site `{}`, valid)\neffective policy:\n",
        policy.site
    );
    for line in policy.to_text().lines() {
        out.push_str(&format!("  {line}\n"));
    }
    Ok(out)
}

/// A trace is JSONL of event objects: every non-empty line starts an
/// object and declares a `"seq"` field first.
fn looks_like_trace(text: &str) -> bool {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(first) => first.trim_start().starts_with("{\"seq\":"),
        None => false,
    }
}

/// A span tree is JSONL whose lines open with `{"span":` — or, for a
/// run that retained no nodes, just the `{"rollup":` trailer.
fn looks_like_spans(text: &str) -> bool {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(first) => {
            let first = first.trim_start();
            first.starts_with("{\"span\":") || first.starts_with("{\"rollup\":")
        }
        None => false,
    }
}

/// Pulls the value text of `"name": value` off a snapshot body line.
fn field_value(line: &str) -> Option<(&str, &str)> {
    let trimmed = line.trim();
    let rest = trimmed.strip_prefix('"')?;
    let (name, rest) = rest.split_once("\":")?;
    Some((name, rest.trim().trim_end_matches(',')))
}

fn summarize_metrics(path: &str, text: &str) -> String {
    let mut out = format!("{path}: metrics snapshot\n");
    let mut section = "";
    let mut zero_counters = 0u64;
    for line in text.lines() {
        let trimmed = line.trim();
        match trimmed {
            "\"counters\": {" => {
                section = "counters";
                out.push_str("counters (non-zero):\n");
                continue;
            }
            "\"gauges\": {" => {
                if zero_counters > 0 {
                    out.push_str(&format!("  ({zero_counters} more at zero)\n"));
                }
                section = "gauges";
                out.push_str("gauges:\n");
                continue;
            }
            "\"histograms\": {" => {
                section = "histograms";
                out.push_str("histograms:\n");
                continue;
            }
            _ => {}
        }
        let Some((name, value)) = field_value(line) else {
            continue;
        };
        match (section, name) {
            (_, "flight") => out.push_str(&format!("flight ring: {value}\n")),
            (_, "digest") => out.push_str(&format!("digest: {value}\n")),
            ("counters", _) => {
                if value == "0" {
                    zero_counters += 1;
                } else {
                    out.push_str(&format!("  {name:<24} {value}\n"));
                }
            }
            ("gauges", _) => out.push_str(&format!("  {name:<24} {value}\n")),
            ("histograms", _) => {
                // `{"lo": .., "hi": .., "bins": [..], .., "count": N}`:
                // the trailing count is the population.
                let count = value
                    .rsplit("\"count\": ")
                    .next()
                    .map_or("?", |v| v.trim_end_matches(['}', ',']));
                out.push_str(&format!("  {name:<24} {count} sample(s)\n"));
            }
            _ => {}
        }
    }
    out
}

/// Pulls `"type":"x"` out of one event line.
fn event_type(line: &str) -> &str {
    line.split("\"type\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("?")
}

fn summarize_trace(path: &str, text: &str) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut by_type: BTreeMap<&str, u64> = BTreeMap::new();
    for line in &lines {
        *by_type.entry(event_type(line)).or_insert(0) += 1;
    }
    let mut out = format!("{path}: event trace, {} event(s)\n", lines.len());
    out.push_str("events by type:\n");
    for (kind, count) in &by_type {
        out.push_str(&format!("  {kind:<24} {count}\n"));
    }
    const SHOW: usize = 3;
    if !lines.is_empty() {
        out.push_str("first:\n");
        for line in lines.iter().take(SHOW) {
            out.push_str(&format!("  {line}\n"));
        }
        if lines.len() > SHOW {
            if lines.len() > 2 * SHOW {
                out.push_str(&format!("  ... {} more ...\n", lines.len() - 2 * SHOW));
            }
            out.push_str("last:\n");
            let tail_start = lines.len().saturating_sub(SHOW).max(SHOW);
            for line in &lines[tail_start..] {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }
    out
}

/// The unsigned integer right after `key` in `text`.
fn u64_after(text: &str, key: &str) -> Option<u64> {
    let rest = text.split(key).nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Same, after the *last* occurrence of `key` — for rollup totals,
/// whose field names also appear inside the per-phase objects.
fn u64_after_last(text: &str, key: &str) -> Option<u64> {
    if !text.contains(key) {
        return None;
    }
    let rest = text.rsplit(key).next()?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The `(entries, slots, probes)` of one named phase object on a line.
fn phase_cost(line: &str, name: &str) -> Option<(u64, u64, u64)> {
    let seg = line.split(&format!("\"{name}\":{{\"entries\":")).nth(1)?;
    let entries: String = seg.chars().take_while(char::is_ascii_digit).collect();
    Some((
        entries.parse().ok()?,
        u64_after(seg, "\"slots\":")?,
        u64_after(seg, "\"probes\":")?,
    ))
}

/// Max span nodes rendered in the tree view; the rollup below it is
/// exact regardless of how many were elided.
const SPAN_TREE_SHOW: usize = 24;

fn summarize_spans(path: &str, text: &str) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let nodes: Vec<&str> = lines
        .iter()
        .copied()
        .filter(|l| l.trim_start().starts_with("{\"span\":"))
        .collect();
    let mut out = format!("{path}: span tree, {} node(s)\n", nodes.len());
    let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, line) in nodes.iter().enumerate() {
        let id = u64_after(line, "{\"span\":").unwrap_or(0);
        let d = u64_after(line, "\"parent\":")
            .and_then(|p| depth.get(&p).copied())
            .map_or(0, |d| d + 1);
        depth.insert(id, d);
        if i >= SPAN_TREE_SHOW {
            continue;
        }
        let kind = line
            .split("\"kind\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("?");
        let ordinal = u64_after(line, "\"ordinal\":").unwrap_or(0);
        let slots = u64_after(line, "\"slots\":").unwrap_or(0);
        let probes = u64_after(line, "\"probes\":").unwrap_or(0);
        out.push_str(&format!(
            "{}{kind} #{ordinal}: slots={slots} probes={probes}",
            "  ".repeat(d + 1),
        ));
        if let Some(ticks) = u64_after(line, "\"ticks\":").filter(|&t| t > 0) {
            out.push_str(&format!(" ticks={ticks}"));
        }
        if let Some(ns) = u64_after(line, "\"wall_ns\":") {
            out.push_str(&format!(" wall={ns}ns"));
        }
        if line.contains("\"open\":true") {
            out.push_str(" (OPEN)");
        }
        out.push('\n');
    }
    if nodes.len() > SPAN_TREE_SHOW {
        out.push_str(&format!(
            "  ... {} more span(s) ...\n",
            nodes.len() - SPAN_TREE_SHOW
        ));
    }
    let Some(rollup) = lines
        .iter()
        .copied()
        .find(|l| l.trim_start().starts_with("{\"rollup\":"))
    else {
        out.push_str("no rollup trailer (truncated artifact?)\n");
        return out;
    };
    let total_slots = u64_after_last(rollup, "\"slots\":").unwrap_or(0);
    out.push_str(&format!(
        "rollup: {} tick(s), slots={total_slots}, probes={} \
         (nodes retained {}, dropped {})\n",
        u64_after_last(rollup, "\"ticks\":").unwrap_or(0),
        u64_after_last(rollup, "\"probes\":").unwrap_or(0),
        u64_after_last(rollup, "\"retained\":").unwrap_or(0),
        u64_after_last(rollup, "\"dropped\":").unwrap_or(0),
    ));
    out.push_str(&format!(
        "  {:<16} {:>10} {:>12} {:>7} {:>12}\n",
        "phase", "entries", "slots", "share", "probes"
    ));
    for phase in tagwatch_obs::PHASES {
        let (entries, slots, probes) = phase_cost(rollup, phase.name()).unwrap_or((0, 0, 0));
        let share = if total_slots == 0 {
            0.0
        } else {
            100.0 * slots as f64 / total_slots as f64
        };
        out.push_str(&format!(
            "  {:<16} {entries:>10} {slots:>12} {share:>6.1}% {probes:>12}\n",
            phase.name(),
        ));
    }
    out
}

/// Compares two artifacts of the same kind and reports the first
/// divergence — the postmortem primitive the byte-stability contract
/// buys: for deterministic artifacts, the first differing line *is*
/// the first event where the runs parted ways.
///
/// Policies are compared in canonical form, so formatting and comment
/// differences do not count as divergence.
///
/// Divergence is a finding, not a failure: the command exits 0 either
/// way and reserves errors for unreadable or mismatched inputs.
///
/// # Errors
///
/// Returns a [`CliError`] if either file cannot be read or recognized,
/// or if the two files are different artifact kinds.
pub fn run_inspect_diff(path_a: &str, path_b: &str) -> Result<String, CliError> {
    let text_a = read_artifact(path_a)?;
    let text_b = read_artifact(path_b)?;
    let unknown = |path: &str| CliError {
        message: format!("`{path}` is not a recognized artifact (try `inspect {path}`)"),
    };
    let kind_a = detect(&text_a).ok_or_else(|| unknown(path_a))?;
    let kind_b = detect(&text_b).ok_or_else(|| unknown(path_b))?;
    if kind_a != kind_b {
        return Err(CliError {
            message: format!(
                "artifact kinds differ: `{path_a}` is a {}, `{path_b}` is a {}",
                kind_a.name(),
                kind_b.name(),
            ),
        });
    }
    let (text_a, text_b) = if kind_a == ArtifactKind::Policy {
        let canonical = |path: &str, text: &str| {
            Policy::parse_named(text, path)
                .map(|p| p.to_text())
                .map_err(|e| CliError {
                    message: e.to_string(),
                })
        };
        (canonical(path_a, &text_a)?, canonical(path_b, &text_b)?)
    } else {
        (text_a, text_b)
    };
    let lines_a: Vec<&str> = text_a.lines().collect();
    let lines_b: Vec<&str> = text_b.lines().collect();
    let common = lines_a.len().min(lines_b.len());
    let first = (0..common).find(|&i| lines_a[i] != lines_b[i]);
    let kind = kind_a.name();
    let header = format!("{path_a} vs {path_b} ({kind}s)");
    match first {
        Some(i) => {
            let differing = (0..common).filter(|&j| lines_a[j] != lines_b[j]).count()
                + lines_a.len().abs_diff(lines_b.len());
            Ok(format!(
                "{header}: diverge at line {}\n- {}\n+ {}\n\
                 {differing} differing line(s) in total \
                 ({} vs {} lines)\n",
                i + 1,
                lines_a[i],
                lines_b[i],
                lines_a.len(),
                lines_b.len(),
            ))
        }
        None if lines_a.len() != lines_b.len() => {
            let (longer_path, longer) = if lines_a.len() > lines_b.len() {
                (path_a, &lines_a)
            } else {
                (path_b, &lines_b)
            };
            Ok(format!(
                "{header}: equal through line {common}, then `{longer_path}` \
                 has {} extra line(s)\n+ {}\n",
                longer.len() - common,
                longer[common],
            ))
        }
        None => Ok(format!("{header}: identical ({common} line(s))\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_obs::{Obs, ObsEvent, ProtoKind, VerdictKind};

    fn sample_obs() -> Obs {
        let obs = Obs::new();
        obs.inc(obs.m.rounds_total);
        obs.inc(obs.m.rounds_utrp);
        obs.set_gauge(obs.m.last_frame_size, 64);
        obs.observe(obs.m.frame_size, 64.0);
        obs.emit(ObsEvent::RoundCompleted {
            proto: ProtoKind::Utrp,
            frame: 64,
            occupied: 12,
            reseeds: 11,
            elapsed_us: 900,
        });
        obs.emit(ObsEvent::Verified {
            proto: ProtoKind::Utrp,
            verdict: VerdictKind::Intact,
            mismatched: 0,
            late: false,
        });
        obs
    }

    #[test]
    fn inspects_a_metrics_snapshot() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        std::fs::write(&path, sample_obs().snapshot_json()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("metrics snapshot"), "{out}");
        assert!(out.contains("rounds_total"), "{out}");
        assert!(out.contains("more at zero"), "{out}");
        assert!(out.contains("last_frame_size"), "{out}");
        assert!(out.contains("frame_size"), "{out}");
        assert!(out.contains("digest: \"fnv64:"), "{out}");
        assert!(
            !out.contains("rounds_trp"),
            "zero counters are elided: {out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspects_an_event_trace() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, sample_obs().flight_jsonl()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("event trace, 2 event(s)"), "{out}");
        assert!(out.contains("round_completed"), "{out}");
        assert!(out.contains("verified"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspects_a_policy_document() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("site.twp");
        std::fs::write(&path, Policy::default().to_text()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("policy document"), "{out}");
        assert!(out.contains("valid"), "{out}");
        assert!(out.contains("effective policy:"), "{out}");
        assert!(out.contains("tagwatch-policy v1"), "{out}");

        // A malformed document is detected as a policy and rejected
        // with the parser's diagnostic, not the generic "neither" error.
        let bad = dir.join("bad.twp");
        std::fs::write(
            &bad,
            "tagwatch-policy v1\n@section thresholds\nalarms_to_escalate nope\n",
        )
        .unwrap();
        let e = run_inspect(&bad.to_string_lossy()).unwrap_err();
        assert!(!e.message.contains("neither"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn span_obs() -> Obs {
        use tagwatch_obs::{Phase, SpanKind};
        let obs = Obs::new();
        obs.span_open(SpanKind::Session);
        obs.span_open(SpanKind::Tick);
        obs.span_open(SpanKind::Round);
        obs.span_phase(Phase::SubFrameSetup, 0, 0);
        obs.span_phase(Phase::MinScan, 64, 500);
        obs.span_phase(Phase::Verify, 64, 0);
        obs.span_close_all();
        obs
    }

    #[test]
    fn inspects_a_span_tree() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-spans-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        std::fs::write(&path, span_obs().spans_jsonl()).unwrap();
        let out = run_inspect(&path.to_string_lossy()).unwrap();
        assert!(out.contains("span tree, 3 node(s)"), "{out}");
        assert!(out.contains("  session #0:"), "{out}");
        assert!(
            out.contains("      round #0: slots=128 probes=500"),
            "{out}"
        );
        assert!(
            out.contains("rollup: 1 tick(s), slots=128, probes=500"),
            "{out}"
        );
        assert!(out.contains("min_scan"), "{out}");
        assert!(out.contains("50.0%"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_reports_the_first_divergent_event() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = sample_obs().flight_jsonl();
        // Inject a single divergent event between otherwise identical
        // traces: the verdict on line 2 flips.
        let changed = base.replace("\"verdict\":\"intact\"", "\"verdict\":\"alarm\"");
        assert_ne!(base, changed, "the injection must hit");
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        std::fs::write(&a, &base).unwrap();
        std::fs::write(&b, &changed).unwrap();
        let out = run_inspect_diff(&a.to_string_lossy(), &b.to_string_lossy()).unwrap();
        assert!(out.contains("diverge at line 2"), "{out}");
        assert!(
            out.contains("- ") && out.contains("\"verdict\":\"intact\""),
            "{out}"
        );
        assert!(
            out.contains("+ ") && out.contains("\"verdict\":\"alarm\""),
            "{out}"
        );
        assert!(out.contains("1 differing line(s)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_reports_identical_and_tail_only_differences() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-diff-tail-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = sample_obs().flight_jsonl();
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        std::fs::write(&a, &base).unwrap();
        std::fs::write(&b, &base).unwrap();
        let out = run_inspect_diff(&a.to_string_lossy(), &b.to_string_lossy()).unwrap();
        assert!(out.contains("identical"), "{out}");

        // One run kept going: same prefix, extra tail lines.
        let longer = format!("{base}{}", base.lines().next().unwrap());
        std::fs::write(&b, &longer).unwrap();
        let out = run_inspect_diff(&a.to_string_lossy(), &b.to_string_lossy()).unwrap();
        assert!(out.contains("extra line(s)"), "{out}");
        assert!(out.contains("equal through line 2"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_rejects_mismatched_and_unknown_kinds() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-diff-kind-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let metrics = dir.join("metrics.json");
        let garbage = dir.join("garbage.txt");
        std::fs::write(&trace, sample_obs().flight_jsonl()).unwrap();
        std::fs::write(&metrics, sample_obs().snapshot_json()).unwrap();
        std::fs::write(&garbage, "hello\n").unwrap();
        let e = run_inspect_diff(&trace.to_string_lossy(), &metrics.to_string_lossy()).unwrap_err();
        assert!(e.message.contains("kinds differ"), "{e}");
        let e = run_inspect_diff(&trace.to_string_lossy(), &garbage.to_string_lossy()).unwrap_err();
        assert!(e.message.contains("not a recognized artifact"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_compares_policies_in_canonical_form() {
        let dir = std::env::temp_dir().join("tagwatch-inspect-diff-policy-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.twp");
        let b = dir.join("b.twp");
        let canonical = Policy::default().to_text();
        std::fs::write(&a, &canonical).unwrap();
        // Same effective policy, different surface form.
        std::fs::write(&b, format!("# a comment\n{canonical}")).unwrap();
        let out = run_inspect_diff(&a.to_string_lossy(), &b.to_string_lossy()).unwrap();
        assert!(out.contains("identical"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_missing_and_unrecognized_files() {
        let e = run_inspect("/nonexistent/nothing.json").unwrap_err();
        assert!(e.message.contains("cannot read"));

        let dir = std::env::temp_dir().join("tagwatch-inspect-bad-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "hello world\n").unwrap();
        let e = run_inspect(&path.to_string_lossy()).unwrap_err();
        assert!(e.message.contains("neither"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
