//! Argument parsing for the `tagwatch-cli` binary.
//!
//! Hand-rolled on purpose: the workspace's dependency policy admits no
//! argument-parsing crates, and the grammar is small enough that a
//! direct parser is clearer than a DSL anyway.

use std::error::Error;
use std::fmt;

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `size trp <n> <m> <alpha>` — Eq. 2 frame size.
    SizeTrp {
        /// Population size.
        n: u64,
        /// Tolerance.
        m: u64,
        /// Confidence.
        alpha: f64,
    },
    /// `size utrp <n> <m> <alpha> [c]` — Eq. 3 frame size.
    SizeUtrp {
        /// Population size.
        n: u64,
        /// Tolerance.
        m: u64,
        /// Confidence.
        alpha: f64,
        /// Colluder sync budget (default 20).
        c: u64,
    },
    /// `detection <n> <x> <f>` — evaluate g(n, x, f).
    Detection {
        /// Population size.
        n: u64,
        /// Missing-tag count.
        x: u64,
        /// Frame size.
        f: u64,
    },
    /// `simulate trp <n> <m> [--trials T] [--seed S]`.
    SimulateTrp {
        /// Population size.
        n: u64,
        /// Tolerance (adversary steals `m + 1`).
        m: u64,
        /// Monte-Carlo trials.
        trials: u64,
        /// Root seed.
        seed: u64,
    },
    /// `simulate utrp <n> <m> [--budget C] [--trials T] [--seed S]`.
    SimulateUtrp {
        /// Population size.
        n: u64,
        /// Tolerance.
        m: u64,
        /// Colluder sync budget.
        budget: u64,
        /// Monte-Carlo trials.
        trials: u64,
        /// Root seed.
        seed: u64,
    },
    /// `identify <n> --steal K [--seed S]` — demo run of the
    /// missing-tag identification protocol.
    Identify {
        /// Population size.
        n: u64,
        /// Number of tags stolen before identification.
        steal: u64,
        /// Root seed.
        seed: u64,
    },
    /// `faults [--quick] [--trials T] [--seed S] [--metrics-out PATH]
    /// [--policy FILE]` — run the named fault-scenario matrix and print
    /// per-scenario alarm / desync / recovery rates.
    Faults {
        /// Cap trials at a smoke-test size (CI).
        quick: bool,
        /// Trials per scenario.
        trials: u64,
        /// Root seed.
        seed: u64,
        /// Where to write the telemetry metrics snapshot, if anywhere.
        metrics_out: Option<String>,
        /// Where to write the Prometheus text exposition, if anywhere.
        prom_out: Option<String>,
        /// Path of a `tagwatch-policy v1` document the scenario
        /// sessions run under (default: legacy session defaults).
        policy: Option<String>,
    },
    /// `soak [--seed S] [--ticks T] [--protocol trp|utrp]
    /// [--report PATH] [--metrics-out PATH] [--trace-out PATH]` — run
    /// the long-horizon soak driver and write its JSON report.
    Soak {
        /// Root seed (the whole run is deterministic in it).
        seed: u64,
        /// Monitoring ticks to drive.
        ticks: u64,
        /// Routine-tick protocol (`true` = UTRP, the default).
        utrp: bool,
        /// Report path override (default `results/soak_<seed>.json`).
        report: Option<String>,
        /// Where to write the telemetry metrics snapshot, if anywhere.
        metrics_out: Option<String>,
        /// Where to write the flight-recorder JSONL trace, if anywhere.
        trace_out: Option<String>,
        /// Where to write the Prometheus text exposition, if anywhere.
        prom_out: Option<String>,
        /// Where to write the span-tree JSONL, if anywhere.
        spans_out: Option<String>,
        /// Decorate spans with I/O-shell wall-clock nanoseconds. The
        /// cost clock stays authoritative; this trades the span
        /// artifact's byte-stability for latency readings.
        spans_wall: bool,
        /// Where to persist the durable write-ahead log, if anywhere.
        /// The WAL is flushed before any non-zero exit, so an
        /// invariant violation still leaves a resumable artifact.
        wal_out: Option<String>,
        /// Scripted crash: stop just before this tick (requires
        /// `--wal-out`, which is what makes the kill survivable).
        crash_at: Option<u64>,
        /// Path of a `tagwatch-policy v1` document to run under. The
        /// policy owns the protocol choice, so it conflicts with
        /// `--protocol`.
        policy: Option<String>,
        /// Worker threads for the session's round engine (default 1 =
        /// the scalar engine). Pure execution knob: the report and
        /// every digest are byte-identical at any value.
        threads: u64,
    },
    /// `recover <wal> [--report PATH]` — warm-restart a soak from its
    /// WAL, re-verify every recorded tick, run it to completion, and
    /// print the verified report digest.
    Recover {
        /// Path of the WAL to recover.
        path: String,
        /// Where to write the completed run's JSON report, if anywhere.
        report: Option<String>,
    },
    /// `inspect <path>` — summarize an exported telemetry artifact (a
    /// metrics snapshot, a JSONL event trace, a span tree, or a policy
    /// document, auto-detected).
    Inspect {
        /// Path of the artifact to summarize.
        path: String,
    },
    /// `inspect diff <a> <b>` — compare two artifacts of the same kind
    /// and report the first divergence (event, span, or metric).
    InspectDiff {
        /// Path of the baseline artifact.
        a: String,
        /// Path of the artifact to compare against it.
        b: String,
    },
    /// `registry new <n> <m> <alpha>` — print a fresh snapshot.
    RegistryNew {
        /// Population size (sequential IDs).
        n: u64,
        /// Tolerance.
        m: u64,
        /// Confidence.
        alpha: f64,
    },
    /// `registry info` — summarize a snapshot read from stdin text.
    RegistryInfo {
        /// The snapshot text (the binary reads stdin; tests inject).
        text: String,
    },
    /// `help` (also the zero-argument default).
    Help,
}

/// CLI usage errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// What went wrong, user-facing.
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

fn want<T: std::str::FromStr>(args: &[String], idx: usize, name: &str) -> Result<T, CliError> {
    args.get(idx)
        .ok_or_else(|| err(format!("missing <{name}>")))?
        .parse()
        .map_err(|_| err(format!("bad <{name}>: `{}`", args[idx])))
}

fn flag(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| err(format!("{name} needs a value")))?
            .parse()
            .map_err(|_| err(format!("bad {name} value"))),
        None => Ok(default),
    }
}

fn opt_flag(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    args.iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1)
                .ok_or_else(|| err(format!("{name} needs a value")))?
                .parse()
                .map_err(|_| err(format!("bad {name} value")))
        })
        .transpose()
}

fn path_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    args.iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| err(format!("{name} needs a path")))
        })
        .transpose()
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a user-facing [`CliError`] for unknown commands or malformed
/// values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(cmd) = args.first().map(String::as_str) else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "size" => match args.get(1).map(String::as_str) {
            Some("trp") => Ok(Command::SizeTrp {
                n: want(args, 2, "n")?,
                m: want(args, 3, "m")?,
                alpha: want(args, 4, "alpha")?,
            }),
            Some("utrp") => Ok(Command::SizeUtrp {
                n: want(args, 2, "n")?,
                m: want(args, 3, "m")?,
                alpha: want(args, 4, "alpha")?,
                c: if args.len() > 5 {
                    want(args, 5, "c")?
                } else {
                    20
                },
            }),
            _ => Err(err("usage: size trp|utrp <n> <m> <alpha> [c]")),
        },
        "detection" => Ok(Command::Detection {
            n: want(args, 1, "n")?,
            x: want(args, 2, "x")?,
            f: want(args, 3, "f")?,
        }),
        "simulate" => {
            let trials = flag(args, "--trials", 500)?;
            let seed = flag(args, "--seed", 1)?;
            match args.get(1).map(String::as_str) {
                Some("trp") => Ok(Command::SimulateTrp {
                    n: want(args, 2, "n")?,
                    m: want(args, 3, "m")?,
                    trials,
                    seed,
                }),
                Some("utrp") => Ok(Command::SimulateUtrp {
                    n: want(args, 2, "n")?,
                    m: want(args, 3, "m")?,
                    budget: flag(args, "--budget", 20)?,
                    trials,
                    seed,
                }),
                _ => Err(err(
                    "usage: simulate trp|utrp <n> <m> [--budget C] [--trials T] [--seed S]",
                )),
            }
        }
        "faults" => Ok(Command::Faults {
            quick: args.iter().any(|a| a == "--quick"),
            trials: flag(args, "--trials", 100)?,
            seed: flag(args, "--seed", 1)?,
            metrics_out: path_flag(args, "--metrics-out")?,
            prom_out: path_flag(args, "--prom-out")?,
            policy: path_flag(args, "--policy")?,
        }),
        "soak" => {
            let utrp = match args.iter().position(|a| a == "--protocol") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("trp") => false,
                    Some("utrp") => true,
                    _ => return Err(err("--protocol must be `trp` or `utrp`")),
                },
                None => true,
            };
            let wal_out = path_flag(args, "--wal-out")?;
            let crash_at = opt_flag(args, "--crash-at")?;
            if crash_at.is_some() && wal_out.is_none() {
                return Err(err(
                    "--crash-at needs --wal-out (the WAL is what survives the kill)",
                ));
            }
            let policy = path_flag(args, "--policy")?;
            if policy.is_some() && args.iter().any(|a| a == "--protocol") {
                return Err(err(
                    "--policy conflicts with --protocol (the policy document declares the protocol)",
                ));
            }
            let threads = flag(args, "--threads", 1)?;
            if threads == 0 {
                return Err(err("--threads must be at least 1"));
            }
            if threads > 1 && wal_out.is_some() {
                return Err(err(
                    "--threads applies to in-memory runs only (durable WAL runs are single-threaded)",
                ));
            }
            Ok(Command::Soak {
                seed: flag(args, "--seed", 1)?,
                ticks: flag(args, "--ticks", 5000)?,
                utrp,
                report: path_flag(args, "--report")?,
                metrics_out: path_flag(args, "--metrics-out")?,
                trace_out: path_flag(args, "--trace-out")?,
                prom_out: path_flag(args, "--prom-out")?,
                spans_out: path_flag(args, "--spans-out")?,
                spans_wall: args.iter().any(|a| a == "--spans-wall"),
                wal_out,
                crash_at,
                policy,
                threads,
            })
        }
        "recover" => Ok(Command::Recover {
            path: args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .ok_or_else(|| err("usage: recover <wal> [--report PATH]"))?,
            report: path_flag(args, "--report")?,
        }),
        "inspect" => match args.get(1).map(String::as_str) {
            Some("diff") => Ok(Command::InspectDiff {
                a: args
                    .get(2)
                    .cloned()
                    .ok_or_else(|| err("usage: inspect diff <a> <b>"))?,
                b: args
                    .get(3)
                    .cloned()
                    .ok_or_else(|| err("usage: inspect diff <a> <b>"))?,
            }),
            Some(path) => Ok(Command::Inspect {
                path: path.to_owned(),
            }),
            None => Err(err("usage: inspect <path> | inspect diff <a> <b>")),
        },
        "identify" => Ok(Command::Identify {
            n: want(args, 1, "n")?,
            steal: flag(args, "--steal", 5)?,
            seed: flag(args, "--seed", 1)?,
        }),
        "registry" => match args.get(1).map(String::as_str) {
            Some("new") => Ok(Command::RegistryNew {
                n: want(args, 2, "n")?,
                m: want(args, 3, "m")?,
                alpha: want(args, 4, "alpha")?,
            }),
            Some("info") => Ok(Command::RegistryInfo {
                text: String::new(),
            }),
            _ => Err(err("usage: registry new <n> <m> <alpha> | registry info")),
        },
        other => Err(err(format!(
            "unknown command `{other}` (try `tagwatch-cli help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_size_commands() {
        assert_eq!(
            parse(&argv("size trp 1000 10 0.95")).unwrap(),
            Command::SizeTrp {
                n: 1000,
                m: 10,
                alpha: 0.95
            }
        );
        assert_eq!(
            parse(&argv("size utrp 1000 10 0.95 40")).unwrap(),
            Command::SizeUtrp {
                n: 1000,
                m: 10,
                alpha: 0.95,
                c: 40
            }
        );
        // Default budget.
        assert!(matches!(
            parse(&argv("size utrp 1000 10 0.95")).unwrap(),
            Command::SizeUtrp { c: 20, .. }
        ));
    }

    #[test]
    fn parses_detection() {
        assert_eq!(
            parse(&argv("detection 500 6 700")).unwrap(),
            Command::Detection {
                n: 500,
                x: 6,
                f: 700
            }
        );
    }

    #[test]
    fn parses_simulate_with_flags() {
        assert_eq!(
            parse(&argv("simulate trp 300 5 --trials 50 --seed 9")).unwrap(),
            Command::SimulateTrp {
                n: 300,
                m: 5,
                trials: 50,
                seed: 9
            }
        );
        assert_eq!(
            parse(&argv("simulate utrp 300 5 --budget 30")).unwrap(),
            Command::SimulateUtrp {
                n: 300,
                m: 5,
                budget: 30,
                trials: 500,
                seed: 1
            }
        );
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_bad_input_with_messages() {
        let e = parse(&argv("size trp 1000 ten 0.95")).unwrap_err();
        assert!(e.message.contains("<m>"));
        let e = parse(&argv("frobnicate")).unwrap_err();
        assert!(e.message.contains("unknown command"));
        let e = parse(&argv("simulate trp 300 5 --trials")).unwrap_err();
        assert!(e.message.contains("--trials"));
    }

    #[test]
    fn parses_identify() {
        assert_eq!(
            parse(&argv("identify 200 --steal 7 --seed 3")).unwrap(),
            Command::Identify {
                n: 200,
                steal: 7,
                seed: 3
            }
        );
        // Defaults.
        assert_eq!(
            parse(&argv("identify 200")).unwrap(),
            Command::Identify {
                n: 200,
                steal: 5,
                seed: 1
            }
        );
    }

    #[test]
    fn parses_faults() {
        assert_eq!(
            parse(&argv("faults --quick --trials 10 --seed 3")).unwrap(),
            Command::Faults {
                quick: true,
                trials: 10,
                seed: 3,
                metrics_out: None,
                prom_out: None,
                policy: None,
            }
        );
        // Defaults.
        assert_eq!(
            parse(&argv("faults")).unwrap(),
            Command::Faults {
                quick: false,
                trials: 100,
                seed: 1,
                metrics_out: None,
                prom_out: None,
                policy: None,
            }
        );
        assert!(matches!(
            parse(&argv("faults --metrics-out m.json")).unwrap(),
            Command::Faults { metrics_out: Some(p), .. } if p == "m.json"
        ));
        let e = parse(&argv("faults --metrics-out")).unwrap_err();
        assert!(e.message.contains("--metrics-out"));
    }

    #[test]
    fn parses_soak() {
        assert_eq!(
            parse(&argv(
                "soak --seed 7 --ticks 800 --protocol trp --report out.json"
            ))
            .unwrap(),
            Command::Soak {
                seed: 7,
                ticks: 800,
                utrp: false,
                report: Some("out.json".into()),
                metrics_out: None,
                trace_out: None,
                prom_out: None,
                spans_out: None,
                spans_wall: false,
                wal_out: None,
                crash_at: None,
                policy: None,
                threads: 1,
            }
        );
        // Defaults: seed 1, 5000 UTRP ticks, derived report path.
        assert_eq!(
            parse(&argv("soak")).unwrap(),
            Command::Soak {
                seed: 1,
                ticks: 5000,
                utrp: true,
                report: None,
                metrics_out: None,
                trace_out: None,
                prom_out: None,
                spans_out: None,
                spans_wall: false,
                wal_out: None,
                crash_at: None,
                policy: None,
                threads: 1,
            }
        );
        assert!(matches!(
            parse(&argv("soak --metrics-out m.json --trace-out t.jsonl")).unwrap(),
            Command::Soak { metrics_out: Some(m), trace_out: Some(t), .. }
                if m == "m.json" && t == "t.jsonl"
        ));
        let e = parse(&argv("soak --protocol carrier-pigeon")).unwrap_err();
        assert!(e.message.contains("--protocol"));
        let e = parse(&argv("soak --report")).unwrap_err();
        assert!(e.message.contains("--report"));
        let e = parse(&argv("soak --trace-out")).unwrap_err();
        assert!(e.message.contains("--trace-out"));
    }

    #[test]
    fn parses_soak_durability_flags() {
        assert!(matches!(
            parse(&argv("soak --wal-out run.wal")).unwrap(),
            Command::Soak { wal_out: Some(w), crash_at: None, .. } if w == "run.wal"
        ));
        assert!(matches!(
            parse(&argv("soak --wal-out run.wal --crash-at 137")).unwrap(),
            Command::Soak {
                wal_out: Some(_),
                crash_at: Some(137),
                ..
            }
        ));
        // A crash without a WAL destination would lose the run.
        let e = parse(&argv("soak --crash-at 137")).unwrap_err();
        assert!(e.message.contains("--wal-out"), "{e}");
        let e = parse(&argv("soak --crash-at soon --wal-out w")).unwrap_err();
        assert!(e.message.contains("--crash-at"));
        let e = parse(&argv("soak --wal-out")).unwrap_err();
        assert!(e.message.contains("--wal-out"));
    }

    #[test]
    fn parses_policy_flags() {
        assert!(matches!(
            parse(&argv("soak --policy site.twp")).unwrap(),
            Command::Soak { policy: Some(p), .. } if p == "site.twp"
        ));
        assert!(matches!(
            parse(&argv("faults --quick --policy site.twp")).unwrap(),
            Command::Faults { policy: Some(p), .. } if p == "site.twp"
        ));
        // The policy document owns the protocol choice.
        let e = parse(&argv("soak --policy site.twp --protocol trp")).unwrap_err();
        assert!(e.message.contains("conflicts"), "{e}");
        let e = parse(&argv("soak --policy")).unwrap_err();
        assert!(e.message.contains("--policy"));
    }

    #[test]
    fn parses_recover() {
        assert_eq!(
            parse(&argv("recover results/run.wal")).unwrap(),
            Command::Recover {
                path: "results/run.wal".into(),
                report: None,
            }
        );
        assert_eq!(
            parse(&argv("recover run.wal --report out.json")).unwrap(),
            Command::Recover {
                path: "run.wal".into(),
                report: Some("out.json".into()),
            }
        );
        let e = parse(&argv("recover")).unwrap_err();
        assert!(e.message.contains("recover <wal>"));
        let e = parse(&argv("recover --report out.json")).unwrap_err();
        assert!(e.message.contains("recover <wal>"));
    }

    #[test]
    fn parses_inspect() {
        assert_eq!(
            parse(&argv("inspect results/metrics.json")).unwrap(),
            Command::Inspect {
                path: "results/metrics.json".into()
            }
        );
        let e = parse(&argv("inspect")).unwrap_err();
        assert!(e.message.contains("inspect <path>"));
    }

    #[test]
    fn parses_inspect_diff() {
        assert_eq!(
            parse(&argv("inspect diff a.jsonl b.jsonl")).unwrap(),
            Command::InspectDiff {
                a: "a.jsonl".into(),
                b: "b.jsonl".into(),
            }
        );
        let e = parse(&argv("inspect diff a.jsonl")).unwrap_err();
        assert!(e.message.contains("inspect diff <a> <b>"));
        let e = parse(&argv("inspect diff")).unwrap_err();
        assert!(e.message.contains("inspect diff <a> <b>"));
    }

    #[test]
    fn parses_observability_out_flags() {
        assert!(matches!(
            parse(&argv("soak --prom-out m.prom --spans-out s.jsonl")).unwrap(),
            Command::Soak { prom_out: Some(p), spans_out: Some(s), .. }
                if p == "m.prom" && s == "s.jsonl"
        ));
        assert!(matches!(
            parse(&argv("faults --quick --prom-out f.prom")).unwrap(),
            Command::Faults { prom_out: Some(p), .. } if p == "f.prom"
        ));
        assert!(matches!(
            parse(&argv("soak --spans-out s.jsonl --spans-wall")).unwrap(),
            Command::Soak {
                spans_wall: true,
                ..
            }
        ));
        let e = parse(&argv("soak --prom-out")).unwrap_err();
        assert!(e.message.contains("--prom-out"));
        let e = parse(&argv("soak --spans-out")).unwrap_err();
        assert!(e.message.contains("--spans-out"));
    }

    #[test]
    fn parses_registry_commands() {
        assert_eq!(
            parse(&argv("registry new 100 5 0.9")).unwrap(),
            Command::RegistryNew {
                n: 100,
                m: 5,
                alpha: 0.9
            }
        );
        assert!(matches!(
            parse(&argv("registry info")).unwrap(),
            Command::RegistryInfo { .. }
        ));
    }
}
