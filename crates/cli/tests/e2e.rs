//! End-to-end tests of the `tagwatch-cli` binary as a real process:
//! exit codes, stdout shapes, stdin plumbing, stderr on misuse.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tagwatch-cli"))
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("size trp"));
}

#[test]
fn no_args_behaves_like_help() {
    let out = cli().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn size_trp_prints_the_frame() {
    let out = cli()
        .args(["size", "trp", "1000", "10", "0.95"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("694 slots"), "{text}");
}

#[test]
fn unknown_command_fails_with_stderr() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
    assert!(out.stdout.is_empty());
}

#[test]
fn bad_parameters_fail_cleanly() {
    let out = cli()
        .args(["size", "trp", "10", "10", "0.95"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("tolerance"), "{err}");
}

#[test]
fn registry_pipeline_new_into_info() {
    let new_out = cli()
        .args(["registry", "new", "30", "2", "0.9"])
        .output()
        .unwrap();
    assert!(new_out.status.success());
    let snapshot = String::from_utf8(new_out.stdout).unwrap();
    assert!(snapshot.starts_with("tagwatch-registry v1"));

    let mut info = cli()
        .args(["registry", "info"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    info.stdin
        .as_mut()
        .unwrap()
        .write_all(snapshot.as_bytes())
        .unwrap();
    let out = info.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("30 tags"), "{text}");
}

#[test]
fn registry_info_rejects_garbage_on_stdin() {
    let mut info = cli()
        .args(["registry", "info"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    info.stdin
        .as_mut()
        .unwrap()
        .write_all(b"not a snapshot")
        .unwrap();
    let out = info.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("parse error"));
}

#[test]
fn simulate_trp_is_deterministic_per_seed() {
    let run = || {
        let out = cli()
            .args([
                "simulate", "trp", "150", "5", "--trials", "100", "--seed", "4",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn identify_reports_exact_match() {
    let out = cli()
        .args(["identify", "120", "--steal", "4", "--seed", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("match: exact"), "{text}");
}
