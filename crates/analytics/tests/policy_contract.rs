//! Contract tests for the `tagwatch-policy v1` document format.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Round-trip exactness** — for any valid policy, the canonical
//!    document (`to_text`) and the flat embedding (`to_flat_lines`)
//!    both parse back to an identical `Policy`. The WAL and the
//!    checkpoint rely on this: a policy that drifts through its own
//!    serialization would silently change a recovered run.
//! 2. **Default-document equivalence** — the default policy *written
//!    out as a document and parsed back* drives the instrumented
//!    seed-7 soak to the committed golden digests byte-for-byte
//!    (`results/obs_golden_digest.txt` and
//!    `results/soak_golden_digest.txt`). The policy engine is a
//!    redesign of the session API, not a behavior change.

#![forbid(unsafe_code)]

use std::path::Path;

use proptest::prelude::*;
use tagwatch_analytics::soak::{run_soak_policy_observed, SoakConfig};
use tagwatch_analytics::{EscalateAction, Policy, TickProtocol};
use tagwatch_core::IdentifyConfig;
use tagwatch_obs::Obs;

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../results/{name}"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
        .trim()
        .to_string()
}

fn last_fnv64(artifact: &str) -> String {
    artifact
        .lines()
        .rev()
        .find_map(|line| {
            let (_, rest) = line.split_once("fnv64:")?;
            let hex: String = rest.chars().take(16).collect();
            (hex.len() == 16 && hex.chars().all(|c| c.is_ascii_hexdigit()))
                .then(|| format!("fnv64:{hex}"))
        })
        .expect("artifact carries a trailing fnv64 digest")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_policies_round_trip_through_text_and_flat_lines(
        site_idx in 0usize..4,
        site_suffix in 0u32..1000,
        utrp in any::<bool>(),
        alarms in 1u32..12,
        retries in 0u32..8,
        quarantine in 0u32..8,
        window in 0u64..512,
        budget in 0u32..64,
        audit_window in 1u64..512,
        report_action in any::<bool>(),
        frame_factor in 1u64..8,
        max_rounds in 1u32..128,
    ) {
        let sites = ["dock", "aisle", "coldroom", "yard"];
        let policy = Policy {
            site: format!("{}-{site_suffix}", sites[site_idx]),
            protocol: if utrp { TickProtocol::Utrp } else { TickProtocol::Trp },
            alarms_to_escalate: alarms,
            max_desync_retries: retries,
            // 0 draws the `off` spelling; Some(0) itself is degenerate.
            desyncs_to_quarantine: (quarantine > 0).then_some(quarantine),
            identify: IdentifyConfig { frame_factor, max_rounds },
            // Zero retries AND a zero window is the rejected
            // no-recovery-path document; steer clear of it.
            desync_window: if retries == 0 { window.max(1) } else { window },
            // 0 draws `unlimited`; Some(0) with quarantine is rejected.
            audit_budget: (budget > 0).then_some(budget),
            audit_window,
            escalate_action: if report_action {
                EscalateAction::Report
            } else {
                EscalateAction::Identify
            },
        };
        prop_assert!(policy.validate().is_ok(), "generator drew a degenerate policy");

        let reparsed = Policy::parse(&policy.to_text()).map_err(|e| e.to_string())?;
        prop_assert_eq!(&reparsed, &policy, "to_text -> parse drifted");
        prop_assert_eq!(reparsed.to_text(), policy.to_text(), "canonical text is not a fixed point");

        let from_flat = Policy::from_flat_lines(policy.to_flat_lines()).map_err(|e| e.to_string())?;
        prop_assert_eq!(&from_flat, &policy, "to_flat_lines -> from_flat_lines drifted");
    }
}

/// The acceptance pin: the default policy, expressed as a *document*
/// and parsed back, reproduces both committed seed-7 goldens.
#[test]
fn default_policy_document_reproduces_the_committed_goldens() {
    let config = SoakConfig {
        seed: 7,
        ticks: 200,
        ..SoakConfig::default()
    };
    // The soak config owns the protocol on the legacy path, so the
    // equivalent document declares the same one.
    let document = Policy {
        protocol: config.protocol,
        ..Policy::default()
    }
    .to_text();
    let policy = Policy::parse(&document).expect("default document parses");

    let obs = Obs::new();
    let report = run_soak_policy_observed(&config, &policy, &obs).expect("soak runs");

    assert_eq!(
        last_fnv64(&obs.snapshot_json()),
        golden("obs_golden_digest.txt"),
        "the default policy document no longer reproduces the instrumented golden"
    );
    assert_eq!(
        format!("fnv1a:{:016x}", report.digest()),
        golden("soak_golden_digest.txt"),
        "the default policy document no longer reproduces the soak report golden"
    );
}

/// A different document must change the run: the policy is load-bearing,
/// not decorative.
#[test]
fn non_default_document_diverges_from_the_goldens() {
    let config = SoakConfig {
        seed: 7,
        ticks: 200,
        ..SoakConfig::default()
    };
    let document = Policy {
        protocol: config.protocol,
        alarms_to_escalate: 4,
        ..Policy::default()
    }
    .to_text();
    let policy = Policy::parse(&document).expect("strict document parses");
    let report = run_soak_policy_observed(&config, &policy, &Obs::new()).expect("soak runs");
    assert_ne!(
        format!("fnv1a:{:016x}", report.digest()),
        golden("soak_golden_digest.txt"),
        "raising the escalation threshold must change the tick log"
    );
}
