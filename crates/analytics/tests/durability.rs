//! End-to-end durability guarantees: a soak killed at *any* scripted
//! tick — with or without scripted media damage — resumes from its WAL
//! to a report byte-identical to the never-crashed baseline's.

use tagwatch_analytics::{
    resume_soak_durable, run_soak, run_soak_durable, DurableConfig, SoakConfig, TickProtocol,
};
use tagwatch_sim::{StorageFault, StorageFaultPlan};

/// Small but fully scripted: desync/crash bursts at ticks 15/30/45, a
/// theft at 30, so the kill sweep crosses every incident type while
/// staying fast enough for the debug-mode test tier.
fn short(protocol: TickProtocol) -> SoakConfig {
    SoakConfig {
        ticks: 60,
        n: 30,
        burst_period: 15,
        theft_period: 30,
        protocol,
        ..SoakConfig::default()
    }
}

fn durable(soak: SoakConfig, fault: StorageFaultPlan) -> DurableConfig {
    DurableConfig {
        soak,
        checkpoint_every: 13,
        fault,
        policy: None,
    }
}

/// The tentpole acceptance sweep: kill at EVERY tick of the scripted
/// 120-tick UTRP soak (thefts, desync bursts, crashes and all), resume
/// each WAL, and demand the resumed report equals the uninterrupted
/// baseline byte for byte — log, digest, and JSON.
#[test]
fn kill_at_every_tick_resumes_to_identical_report() {
    let soak = short(TickProtocol::Utrp);
    let baseline = run_soak(&soak).unwrap();
    for crash_tick in 0..soak.ticks {
        let config = durable(soak, StorageFaultPlan::new().crash_at_tick(crash_tick));
        let outcome = run_soak_durable(&config).unwrap();
        assert_eq!(outcome.interrupted_at, Some(crash_tick));
        let resumed = resume_soak_durable(&outcome.wal)
            .unwrap_or_else(|e| panic!("resume after crash at {crash_tick} failed: {e}"));
        assert!(resumed.recovery.is_empty(), "clean kill at {crash_tick}");
        assert_eq!(
            resumed.resumed_from,
            if crash_tick == 0 {
                0
            } else {
                (crash_tick - 1) / config.checkpoint_every * config.checkpoint_every
            },
            "crash at {crash_tick}"
        );
        assert_eq!(resumed.report.log, baseline.log, "crash at {crash_tick}");
        assert_eq!(
            resumed.report.digest(),
            baseline.digest(),
            "crash at {crash_tick}"
        );
        assert_eq!(
            resumed.report.to_json(),
            baseline.to_json(),
            "crash at {crash_tick}"
        );
    }
}

/// Same guarantee under TRP, and with damage riding on the crash: a
/// sampled grid of kill ticks, each paired with every corruption kind.
#[test]
fn damaged_crashes_across_protocols_still_converge() {
    for protocol in [TickProtocol::Trp, TickProtocol::Utrp] {
        let soak = short(protocol);
        let baseline = run_soak(&soak).unwrap();
        for crash_tick in [1, 12, 13, 29, 30, 31, 45, 59] {
            for fault in [
                StorageFault::TornWrite { drop_bytes: 9 },
                StorageFault::BitFlip {
                    offset_from_end: 15,
                    bit: 6,
                },
                StorageFault::TruncateTail { drop_bytes: 300 },
            ] {
                let config = durable(
                    soak,
                    StorageFaultPlan::new()
                        .crash_at_tick(crash_tick)
                        .with_damage(fault),
                );
                let outcome = run_soak_durable(&config).unwrap();
                let resumed = resume_soak_durable(&outcome.wal)
                    .unwrap_or_else(|e| panic!("{protocol:?} crash {crash_tick} {fault:?}: {e}"));
                assert_eq!(
                    resumed.recovery.len(),
                    1,
                    "{protocol:?} crash {crash_tick} {fault:?} must be attributed"
                );
                assert_eq!(
                    resumed.report.digest(),
                    baseline.digest(),
                    "{protocol:?} crash {crash_tick} {fault:?}"
                );
                assert_eq!(
                    resumed.report.log, baseline.log,
                    "{protocol:?} crash {crash_tick} {fault:?}"
                );
            }
        }
    }
}

/// A resumed WAL is itself durable: crash the first run, resume it,
/// then damage and re-resume the *completed* WAL — recovery excises
/// the damage and replay re-verifies every tick back to the same
/// digest. Double faults do not compound.
#[test]
fn double_crash_recovery_is_stable() {
    let soak = short(TickProtocol::Utrp);
    let baseline = run_soak(&soak).unwrap();

    let config = durable(
        soak,
        StorageFaultPlan::new()
            .crash_at_tick(47)
            .with_damage(StorageFault::TornWrite { drop_bytes: 5 }),
    );
    let outcome = run_soak_durable(&config).unwrap();
    let first = resume_soak_durable(&outcome.wal).unwrap();
    assert_eq!(first.recovery.len(), 1);
    assert_eq!(first.report.digest(), baseline.digest());

    // Second fault: chop the tail off the completed WAL and resume it.
    let mut damaged = first.wal.clone();
    StorageFault::TruncateTail { drop_bytes: 500 }.apply(&mut damaged);
    let second = resume_soak_durable(&damaged).unwrap();
    assert_eq!(second.recovery.len(), 1, "second fault attributed too");
    assert_eq!(second.report.digest(), baseline.digest());
    assert_eq!(second.report.log, baseline.log);
    assert_eq!(second.report.to_json(), baseline.to_json());
}
