//! Regression gate for the determinism refactors: the ordered-map
//! swaps (`HashMap`/`HashSet` → `BTreeMap`/`BTreeSet` in the sim
//! population, replay attacker, and faulty-reader paths) must not move
//! a single byte of any digested export.
//!
//! The anchor is the committed golden digest CI pins
//! (`results/obs_golden_digest.txt`): the same instrumented soak the
//! `obs-smoke` job runs (`--seed 7 --ticks 200`) must reproduce it
//! in-process, byte for byte.

#![forbid(unsafe_code)]

use std::path::Path;

use tagwatch_analytics::soak::{run_soak_observed, run_soak_observed_threads, SoakConfig};
use tagwatch_analytics::{worker_threads, TickProtocol};
use tagwatch_obs::Obs;

fn golden_digest() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/obs_golden_digest.txt");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
        .trim()
        .to_string()
}

fn last_fnv64(artifact: &str) -> String {
    artifact
        .lines()
        .rev()
        .find_map(|line| {
            let (_, rest) = line.split_once("fnv64:")?;
            let hex: String = rest.chars().take(16).collect();
            (hex.len() == 16 && hex.chars().all(|c| c.is_ascii_hexdigit()))
                .then(|| format!("fnv64:{hex}"))
        })
        .expect("artifact carries a trailing fnv64 digest")
}

#[test]
fn instrumented_soak_matches_committed_golden_digest() {
    let config = SoakConfig {
        seed: 7,
        ticks: 200,
        ..SoakConfig::default()
    };
    let obs = Obs::new();
    let report = run_soak_observed(&config, &obs).expect("soak runs");
    assert!(report.config.ticks == 200);

    let metrics = obs.snapshot_json();
    assert_eq!(
        last_fnv64(&metrics),
        golden_digest(),
        "metrics digest drifted from results/obs_golden_digest.txt — \
         a determinism refactor changed observable behavior"
    );
}

/// The committed golden digest must hold at EVERY thread count: the
/// pooled round engine is bit-exact, so handing the soak's sessions a
/// multi-thread engine cannot move a byte of the metrics export. (At
/// the golden population size the pool stays below its engagement
/// threshold — this pins the fallback path's byte-identity, which is
/// exactly what protects the committed goldens.)
#[test]
fn golden_digest_holds_at_every_thread_count() {
    let config = SoakConfig {
        seed: 7,
        ticks: 200,
        ..SoakConfig::default()
    };
    for threads in [1usize, 2, 3, worker_threads()] {
        let obs = Obs::new();
        run_soak_observed_threads(&config, &obs, threads).expect("soak runs");
        assert_eq!(
            last_fnv64(&obs.snapshot_json()),
            golden_digest(),
            "metrics digest must match the golden at threads={threads}"
        );
    }
}

/// A population large enough to engage the pooled workers (n above
/// the 8192-active threshold) must still produce byte-identical soak
/// reports and flight traces at every thread count, with exact probe
/// totals. (The full metrics snapshot is excluded: `probes_filtered`
/// counts the per-shard candidate-filter warm-up, which is
/// strategy-dependent by the same documented contract that makes it
/// chunking-dependent in the chunked reference scanner.)
#[test]
fn pool_engaged_soak_is_byte_identical_across_thread_counts() {
    let config = SoakConfig {
        seed: 11,
        ticks: 6,
        n: 10_000,
        protocol: TickProtocol::Utrp,
        ..SoakConfig::default()
    };
    let mut baseline: Option<(String, u64, String, u64)> = None;
    for threads in [1usize, 2, 3] {
        let obs = Obs::new();
        let report = run_soak_observed_threads(&config, &obs, threads).expect("soak runs");
        let artifacts = (
            report.to_json(),
            report.digest(),
            obs.flight_jsonl(),
            obs.counter(obs.m.probes_total),
        );
        match &baseline {
            Some(expected) => assert_eq!(
                &artifacts, expected,
                "soak artifacts must be thread-invariant (threads={threads})"
            ),
            None => baseline = Some(artifacts),
        }
    }
}

#[test]
fn soak_report_is_byte_identical_across_runs() {
    let config = SoakConfig {
        seed: 7,
        ticks: 50,
        ..SoakConfig::default()
    };
    let a = run_soak_observed(&config, &Obs::new()).expect("soak runs");
    let b = run_soak_observed(&config, &Obs::new()).expect("soak runs");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.digest(), b.digest());
}
