//! Regression gate for the determinism refactors: the ordered-map
//! swaps (`HashMap`/`HashSet` → `BTreeMap`/`BTreeSet` in the sim
//! population, replay attacker, and faulty-reader paths) must not move
//! a single byte of any digested export.
//!
//! The anchor is the committed golden digest CI pins
//! (`results/obs_golden_digest.txt`): the same instrumented soak the
//! `obs-smoke` job runs (`--seed 7 --ticks 200`) must reproduce it
//! in-process, byte for byte.

#![forbid(unsafe_code)]

use std::path::Path;

use tagwatch_analytics::soak::{run_soak_observed, SoakConfig};
use tagwatch_obs::Obs;

fn golden_digest() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/obs_golden_digest.txt");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
        .trim()
        .to_string()
}

fn last_fnv64(artifact: &str) -> String {
    artifact
        .lines()
        .rev()
        .find_map(|line| {
            let (_, rest) = line.split_once("fnv64:")?;
            let hex: String = rest.chars().take(16).collect();
            (hex.len() == 16 && hex.chars().all(|c| c.is_ascii_hexdigit()))
                .then(|| format!("fnv64:{hex}"))
        })
        .expect("artifact carries a trailing fnv64 digest")
}

#[test]
fn instrumented_soak_matches_committed_golden_digest() {
    let config = SoakConfig {
        seed: 7,
        ticks: 200,
        ..SoakConfig::default()
    };
    let obs = Obs::new();
    let report = run_soak_observed(&config, &obs).expect("soak runs");
    assert!(report.config.ticks == 200);

    let metrics = obs.snapshot_json();
    assert_eq!(
        last_fnv64(&metrics),
        golden_digest(),
        "metrics digest drifted from results/obs_golden_digest.txt — \
         a determinism refactor changed observable behavior"
    );
}

#[test]
fn soak_report_is_byte_identical_across_runs() {
    let config = SoakConfig {
        seed: 7,
        ticks: 50,
        ..SoakConfig::default()
    };
    let a = run_soak_observed(&config, &Obs::new()).expect("soak runs");
    let b = run_soak_observed(&config, &Obs::new()).expect("soak runs");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.digest(), b.digest());
}
