//! Acceptance gates for deterministic span tracing: the phase rollup
//! must account for the engine's cost-clock totals *exactly* (the
//! telescoping slot identity), and span artifacts must be
//! byte-identical across runs and thread counts — same contract the
//! metrics snapshot already honors.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch_analytics::soak::{run_soak_observed_threads, SoakConfig};
use tagwatch_analytics::{MonitoringSession, Policy, TickProtocol};
use tagwatch_core::executor::RoundExecutor;
use tagwatch_core::server::MonitorServer;
use tagwatch_obs::{to_prometheus_text, Obs, Phase};
use tagwatch_sim::TagPopulation;

fn session(n: usize, protocol: TickProtocol) -> (MonitoringSession, TagPopulation) {
    let floor = TagPopulation::with_sequential_ids(n);
    let server = MonitorServer::new(floor.ids(), 3, 0.95).expect("valid server");
    let policy = Policy {
        protocol,
        ..Policy::default()
    };
    (MonitoringSession::new(server, policy), floor)
}

/// The telescoping identity: every slot the executor charges to
/// `slots_total` is attributed to exactly one of min-scan / re-seed
/// (a reply at relative slot `rel` elapses `rel + 1` slots of its
/// sub-frame, silence elapses the remainder), and every probe to one
/// of them as well. The rollup must match the counters to the slot —
/// 100% attribution, comfortably above the 95% acceptance floor.
#[test]
fn utrp_rollup_attributes_every_slot_and_probe() {
    let (mut session, mut floor) = session(500, TickProtocol::Utrp);
    let mut rng = StdRng::seed_from_u64(9);
    let ideal = RoundExecutor::ideal();
    let obs = Obs::new();
    for _ in 0..12 {
        session
            .tick_with(&mut floor, &ideal, &mut rng, Some(&obs))
            .expect("tick runs");
    }
    let rollup = obs.span_rollup();
    let scan_slots = rollup.phase(Phase::MinScan).slots + rollup.phase(Phase::ReSeed).slots;
    let scan_probes = rollup.phase(Phase::MinScan).probes + rollup.phase(Phase::ReSeed).probes;
    assert!(obs.counter(obs.m.slots_total) > 0, "rounds actually ran");
    assert_eq!(
        scan_slots,
        obs.counter(obs.m.slots_total),
        "min-scan + re-seed slots must telescope to slots_total exactly"
    );
    assert_eq!(
        scan_probes,
        obs.counter(obs.m.probes_total),
        "phase probes must cover the engine's probe total exactly"
    );
    // The verify mirror re-walks every frame, so its slot cost equals
    // the field rounds' slot total.
    assert_eq!(
        rollup.phase(Phase::Verify).slots,
        obs.counter(obs.m.slots_total)
    );
    assert_eq!(
        rollup.phase(Phase::SubFrameSetup).entries,
        rollup.phase(Phase::MinScan).entries + rollup.phase(Phase::ReSeed).entries,
        "one sub-frame setup per announcement"
    );
}

/// Same identity for the trusted-reader protocol: a TRP round is one
/// framed announcement whose whole frame is min-scan cost.
#[test]
fn trp_rollup_attributes_every_slot() {
    let (mut session, mut floor) = session(300, TickProtocol::Trp);
    let mut rng = StdRng::seed_from_u64(17);
    let ideal = RoundExecutor::ideal();
    let obs = Obs::new();
    for _ in 0..8 {
        session
            .tick_with(&mut floor, &ideal, &mut rng, Some(&obs))
            .expect("tick runs");
    }
    let rollup = obs.span_rollup();
    assert!(obs.counter(obs.m.slots_total) > 0);
    assert_eq!(
        rollup.phase(Phase::MinScan).slots,
        obs.counter(obs.m.slots_total)
    );
    assert_eq!(rollup.phase(Phase::ReSeed).slots, 0, "TRP never re-seeds");
    assert_eq!(
        rollup.phase(Phase::Verify).slots,
        obs.counter(obs.m.slots_total)
    );
}

/// Span artifacts ride the cost clock, not wall time, so the JSONL
/// tree — parents, ordinals, per-phase costs — must be byte-identical
/// across runs and across thread counts, pool engaged or not.
#[test]
fn span_jsonl_is_byte_identical_across_runs_and_threads() {
    let config = SoakConfig {
        seed: 11,
        ticks: 6,
        n: 10_000,
        protocol: TickProtocol::Utrp,
        ..SoakConfig::default()
    };
    let mut baseline: Option<String> = None;
    for threads in [1usize, 1, 3] {
        let obs = Obs::new();
        run_soak_observed_threads(&config, &obs, threads).expect("soak runs");
        let jsonl = obs.spans_jsonl();
        assert!(
            jsonl.lines().count() > config.ticks as usize,
            "tree holds at least one span per tick plus the rollup"
        );
        match &baseline {
            Some(expected) => assert_eq!(
                &jsonl, expected,
                "span tree must be byte-identical (threads={threads})"
            ),
            None => baseline = Some(jsonl),
        }
    }
}

/// The Prometheus body is a rendering of the same registry the golden
/// digest pins, so at the golden configuration it must be
/// byte-identical across runs and thread counts too.
#[test]
fn prometheus_text_is_byte_identical_across_runs_and_threads() {
    let config = SoakConfig {
        seed: 7,
        ticks: 50,
        ..SoakConfig::default()
    };
    let mut baseline: Option<String> = None;
    for threads in [1usize, 1, 2, 3] {
        let obs = Obs::new();
        run_soak_observed_threads(&config, &obs, threads).expect("soak runs");
        let body = to_prometheus_text(&obs);
        assert!(body.contains("# TYPE tagwatch_rounds_total counter"));
        match &baseline {
            Some(expected) => assert_eq!(
                &body, expected,
                "prometheus body must be byte-identical (threads={threads})"
            ),
            None => baseline = Some(body),
        }
    }
}

/// Tick spans nest under the session span and the rollup counts every
/// tick, even though fault-plan rounds run outside the engine's
/// observed fast path.
#[test]
fn soak_span_tree_has_session_and_tick_structure() {
    let config = SoakConfig {
        seed: 3,
        ticks: 5,
        ..SoakConfig::default()
    };
    let obs = Obs::new();
    run_soak_observed_threads(&config, &obs, 1).expect("soak runs");
    let rollup = obs.span_rollup();
    assert_eq!(rollup.ticks, 5);
    let jsonl = obs.spans_jsonl();
    assert!(jsonl.contains("\"kind\":\"session\""));
    assert!(jsonl.contains("\"kind\":\"tick\""));
    assert!(jsonl.contains("\"kind\":\"round\""));
    assert!(
        !jsonl.contains("\"open\":true"),
        "finish must close every span"
    );
    assert!(
        jsonl.contains("\"wall_ns\":null"),
        "no clock injected: wall decoration stays null"
    );
}
