//! Summary statistics for experiment outputs.

use std::fmt;

/// Five-number summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for `count < 2`).
    pub std_dev: f64,
    /// Smallest observation (0 for an empty sample).
    pub min: f64,
    /// Largest observation (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Standard error of the mean (0 for empty samples).
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.3} ± {:.3} (n={}, range [{:.3}, {:.3}])",
            self.mean,
            self.std_err(),
            self.count,
            self.min,
            self.max
        )
    }
}

/// A binomial proportion with a Wilson score interval — the right tool
/// for detection *rates*, which live near 0.95 where normal intervals
/// misbehave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
}

impl Proportion {
    /// Creates a proportion.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    #[must_use]
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes exceed trials");
        Proportion { successes, trials }
    }

    /// The point estimate (0 for zero trials).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson score interval at `z` standard normal quantiles
    /// (`z = 1.96` for 95%).
    #[must_use]
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.wilson_interval(1.96);
        write!(
            f,
            "{:.4} ({}/{}; 95% CI [{:.4}, {:.4}])",
            self.rate(),
            self.successes,
            self.trials,
            lo,
            hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.2909944487358056).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_err() - s.std_dev / 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let empty = Summary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.std_err(), 0.0);
        let one = Summary::from_samples(&[7.0]);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn proportion_rate_and_interval() {
        let p = Proportion::new(95, 100);
        assert!((p.rate() - 0.95).abs() < 1e-12);
        let (lo, hi) = p.wilson_interval(1.96);
        assert!(lo > 0.88 && lo < 0.95, "lo = {lo}");
        assert!(hi > 0.95 && hi < 1.0, "hi = {hi}");
    }

    #[test]
    fn wilson_stays_in_unit_interval_at_extremes() {
        let zero = Proportion::new(0, 50);
        let (lo, _) = zero.wilson_interval(1.96);
        assert_eq!(lo, 0.0);
        let all = Proportion::new(50, 50);
        let (_, hi) = all.wilson_interval(1.96);
        assert!(hi <= 1.0);
        assert!(all.wilson_interval(1.96).0 > 0.9);
    }

    #[test]
    fn zero_trials_is_vacuous() {
        let p = Proportion::new(0, 0);
        assert_eq!(p.rate(), 0.0);
        assert_eq!(p.wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "successes exceed trials")]
    fn proportion_validates() {
        let _ = Proportion::new(5, 4);
    }

    #[test]
    fn displays_are_informative() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        assert!(s.to_string().contains("mean 1.500"));
        let p = Proportion::new(9, 10);
        assert!(p.to_string().contains("9/10"));
    }

    #[test]
    fn tighter_interval_with_more_trials() {
        let small = Proportion::new(19, 20);
        let large = Proportion::new(1900, 2000);
        let w = |p: Proportion| {
            let (lo, hi) = p.wilson_interval(1.96);
            hi - lo
        };
        assert!(w(large) < w(small) / 3.0);
    }
}
