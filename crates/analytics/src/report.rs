//! Plain-text rendering of experiment results: aligned tables for the
//! terminal, CSV for plotting, and ASCII series sketches — everything
//! the figure binaries print, with no formatting logic duplicated in
//! them.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting — cells are numeric or simple labels).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// A one-line ASCII sketch of a series, for eyeballing monotonicity in
/// terminal output: maps values onto eight spark levels.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !(hi - lo).is_finite() || hi == lo {
        return LEVELS[3].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let t = (v - lo) / (hi - lo);
            let idx = ((t * 7.0).round() as usize).min(7);
            LEVELS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["n", "slots"]);
        t.push_row(["100", "233"]);
        t.push_row(["2000", "4"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("slots"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers line up at the column boundary.
        assert!(lines[2].ends_with("233"));
        assert!(lines[3].ends_with("  4"));
    }

    #[test]
    fn csv_is_plain() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn table_len_tracks_rows() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width must match header width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn sparkline_shows_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_flat_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
        let first = flat.chars().next().unwrap();
        assert!(flat.chars().all(|c| c == first));
    }
}
