//! Parallel re-seed scans: a chunked minimum-reduction over the core
//! engine's [`ScanJob`], with a merge that is deterministic by
//! construction.
//!
//! Every UTRP announcement reduces the active set to its minimum reply
//! slot plus the members that chose it (see
//! [`tagwatch_core::engine`]). The core crate ships the sequential
//! scanner and stays thread-free; this module supplies the parallel
//! strategy on top of [`parallel_map`]:
//!
//! 1. split the active arrays into fixed, index-ordered chunks;
//! 2. scan each chunk independently (each bottoms out in
//!    [`ScanJob::scan_range`], so per-tag slots are computed by exactly
//!    the same code as the sequential pass);
//! 3. merge: the global minimum is the min over chunk minima, and the
//!    member list is the concatenation of matching chunks **in chunk
//!    index order** — which is ascending active-index order, the same
//!    contract the sequential scanner meets.
//!
//! Because the merge never depends on thread scheduling (chunk results
//! come back in index order from `parallel_map`), the parallel scanner
//! is bit-identical to the sequential one on every announcement — not
//! merely on the final bitstring. The tests pin both levels.
//!
//! Small scans fall back to the sequential pass: below
//! [`PARALLEL_THRESHOLD`] active tags, thread fan-out costs more than
//! the scan itself. A full round's scan sizes shrink as tags retire, so
//! even million-tag rounds end their tail sequentially. A round that
//! *starts* below the threshold never fans out at all; the observed
//! entry point ([`run_round_parallel_observed`]) makes that visible as
//! an [`ObsEvent::ScalarFallback`] flight event, mirroring the
//! persistent pool's reporting (see [`crate::pool`]).
//!
//! This module remains the *reference* chunked strategy (per-call
//! scope fan-out, exhaustively tested merge discipline); the
//! production hot path is [`crate::pool::PooledEngine`], which keeps
//! the same index-ordered merge but parks its workers between
//! announcements so dispatch stays cheap.

use tagwatch_core::engine::{sequential_min_scan, ScanJob, ScanStats};
use tagwatch_core::nonce::NonceSequence;
use tagwatch_core::{CoreError, RoundScratch};
use tagwatch_obs::{Obs, ObsEvent};
use tagwatch_sim::FrameSize;

use crate::parallel::{parallel_map, worker_threads};
use crate::pool::POOL_THRESHOLD;

/// Active-set size below which [`parallel_min_scan`] runs sequentially.
///
/// Derived from the dispatch-cost measurements behind the persistent
/// pool (see `docs/PERFORMANCE.md`). A *parked* worker is woken with
/// two channel hops, ~5–15 µs per announcement, which puts the pool's
/// measured break-even near [`POOL_THRESHOLD`] actives. This module's
/// per-call `std::thread::scope` fan-out additionally pays a thread
/// spawn + join per worker (~25–60 µs on the perf harness), about 4×
/// the parked dispatch — so its crossover sits at 4× the pool's
/// threshold. The old `1 << 16` guess was measured to be roughly 2×
/// too conservative: scans in the 32k–64k range already win from
/// fan-out when threads exist, and below 32k the spawn cost dominates.
pub const PARALLEL_THRESHOLD: usize = 4 * POOL_THRESHOLD;

/// One announcement's minimum scan, chunked across worker threads.
///
/// Drop-in for [`sequential_min_scan`] in
/// [`RoundScratch::run_with`]: returns the same minimum slot and fills
/// `members` with the same active indices in the same (ascending)
/// order, regardless of thread count.
pub fn parallel_min_scan(job: &ScanJob<'_>, members: &mut Vec<u32>) -> Option<u64> {
    let threads = worker_threads();
    if job.len() < PARALLEL_THRESHOLD || threads <= 1 {
        return sequential_min_scan(job, members);
    }
    let chunk = job.len().div_ceil(threads);
    chunked_min_scan(job, chunk, members)
}

/// [`parallel_min_scan`] with an explicit chunk length (tests exercise
/// degenerate chunkings; the public entry point picks one per the
/// worker count).
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn chunked_min_scan(
    job: &ScanJob<'_>,
    chunk_len: usize,
    members: &mut Vec<u32>,
) -> Option<u64> {
    assert!(chunk_len > 0, "chunk length must be positive");
    members.clear();
    if job.is_empty() {
        return None;
    }
    let chunks = job.len().div_ceil(chunk_len) as u64;
    // Each chunk returns (min slot, member indices ascending); results
    // arrive in chunk index order, so concatenation preserves the
    // ascending-index contract.
    let partials = parallel_map(chunks, |c| {
        let lo = c as usize * chunk_len;
        let hi = (lo + chunk_len).min(job.len());
        let mut chunk_members = Vec::new();
        let min = job.scan_range(lo, hi, &mut chunk_members);
        (min, chunk_members)
    });
    let best = partials.iter().filter_map(|(m, _)| *m).min()?;
    for (min, chunk_members) in &partials {
        if *min == Some(best) {
            members.extend_from_slice(chunk_members);
        }
    }
    Some(best)
}

/// Runs one UTRP round over `scratch`'s loaded participants with the
/// parallel scanner — [`RoundScratch::run`] with
/// [`parallel_min_scan`] injected.
///
/// # Errors
///
/// As [`RoundScratch::run`].
pub fn run_round_parallel(
    scratch: &mut RoundScratch,
    f: FrameSize,
    nonces: &NonceSequence,
) -> Result<u64, CoreError> {
    scratch.run_with(f, nonces, parallel_min_scan)
}

/// [`run_round_parallel`] that reports scalar fallback: when the round
/// *starts* below [`PARALLEL_THRESHOLD`] (scan sizes only shrink, so
/// the whole round then runs sequentially), one
/// [`ObsEvent::ScalarFallback`] lands in `obs`'s flight ring — the
/// same per-round event the persistent pool emits, so operators can
/// see which deployments are paying for parallelism they never use.
/// Scan results are bit-identical to [`run_round_parallel`] (and to
/// the sequential engine) either way; with a disabled `obs` no event
/// is recorded.
///
/// # Errors
///
/// As [`RoundScratch::run`].
pub fn run_round_parallel_observed(
    scratch: &mut RoundScratch,
    f: FrameSize,
    nonces: &NonceSequence,
    obs: &Obs,
) -> Result<u64, CoreError> {
    let mut opening_len: Option<usize> = None;
    let announcements = scratch.run_with(f, nonces, |job, members| {
        if opening_len.is_none() {
            opening_len = Some(job.len());
        }
        parallel_min_scan(job, members)
    })?;
    if let Some(opening) = opening_len {
        if opening > 0 && opening < PARALLEL_THRESHOLD && obs.enabled() {
            obs.emit(ObsEvent::ScalarFallback {
                actives: opening as u64,
                threshold: PARALLEL_THRESHOLD as u64,
            });
        }
    }
    Ok(announcements)
}

/// [`chunked_min_scan`] that additionally accumulates probe
/// accounting into `stats`. Each chunk counts independently (the
/// counting scan shares the plain scan's selection loop, so scan
/// *results* stay bit-identical) and the per-chunk stats are summed in
/// chunk index order. `probes` equals the sequential counting scan's
/// total exactly; `filtered` is strategy-dependent — the candidate
/// pre-filter warms up per chunk, so a fresh chunk skips fewer probes
/// than a long sequential pass would. For a fixed chunking it is
/// fully deterministic.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn chunked_min_scan_counting(
    job: &ScanJob<'_>,
    chunk_len: usize,
    members: &mut Vec<u32>,
    stats: &mut ScanStats,
) -> Option<u64> {
    assert!(chunk_len > 0, "chunk length must be positive");
    members.clear();
    if job.is_empty() {
        return None;
    }
    let chunks = job.len().div_ceil(chunk_len) as u64;
    let partials = parallel_map(chunks, |c| {
        let lo = c as usize * chunk_len;
        let hi = (lo + chunk_len).min(job.len());
        let mut chunk_members = Vec::new();
        let mut chunk_stats = ScanStats::default();
        let min = job.scan_range_counting(lo, hi, &mut chunk_members, &mut chunk_stats);
        (min, chunk_members, chunk_stats)
    });
    for (_, _, chunk_stats) in &partials {
        stats.merge(*chunk_stats);
    }
    let best = partials.iter().filter_map(|(m, _, _)| *m).min()?;
    for (min, chunk_members, _) in &partials {
        if *min == Some(best) {
            members.extend_from_slice(chunk_members);
        }
    }
    Some(best)
}

/// Runs one UTRP round over `scratch` with the chunked scanner and
/// telemetry: probe and candidate-filter totals land in `obs` (see
/// [`chunked_min_scan_counting`] for which of those are
/// chunking-invariant). With a disabled `obs`, this is
/// [`chunked_min_scan`] with no accounting at all.
///
/// # Errors
///
/// As [`RoundScratch::run`].
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn run_round_chunked_observed(
    scratch: &mut RoundScratch,
    f: FrameSize,
    nonces: &NonceSequence,
    chunk_len: usize,
    obs: &Obs,
) -> Result<u64, CoreError> {
    if !obs.enabled() {
        return scratch.run_with(f, nonces, |job, members| {
            chunked_min_scan(job, chunk_len, members)
        });
    }
    let mut stats = ScanStats::default();
    let announcements = scratch.run_with(f, nonces, |job, members| {
        chunked_min_scan_counting(job, chunk_len, members, &mut stats)
    })?;
    obs.add(obs.m.probes_total, stats.probes);
    obs.add(obs.m.probes_filtered, stats.filtered);
    Ok(announcements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::utrp::{UtrpChallenge, UtrpParticipant};
    use tagwatch_sim::{Counter, TagId, TimingModel};

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    fn parts(n: u64) -> Vec<UtrpParticipant> {
        (1..=n)
            .map(|i| {
                let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(i % 7));
                p.mute = i % 11 == 0;
                p
            })
            .collect()
    }

    #[test]
    fn parallel_round_is_bit_identical_to_sequential() {
        for (n, f, seed) in [(50u64, 64u64, 1u64), (300, 128, 2), (1000, 96, 3)] {
            let ch = challenge(f, seed);
            let population = parts(n);

            let mut seq = RoundScratch::new();
            seq.load_participants(&population);
            let seq_ann = seq.run(ch.frame_size(), ch.nonces()).unwrap();
            let seq_bs = seq.take_bitstring();

            let mut par = RoundScratch::new();
            par.load_participants(&population);
            let par_ann = run_round_parallel(&mut par, ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*par.bitstring(), seq_bs, "n={n} f={f}");
            assert_eq!(par_ann, seq_ann, "n={n} f={f}");
        }
    }

    #[test]
    fn observed_parallel_round_reports_the_scalar_fallback() {
        let ch = challenge(64, 4);
        let population = parts(500);

        let mut seq = RoundScratch::new();
        seq.load_participants(&population);
        seq.run(ch.frame_size(), ch.nonces()).unwrap();
        let seq_bs = seq.take_bitstring();

        let obs = Obs::new();
        let mut par = RoundScratch::new();
        par.load_participants(&population);
        run_round_parallel_observed(&mut par, ch.frame_size(), ch.nonces(), &obs).unwrap();
        assert_eq!(
            *par.bitstring(),
            seq_bs,
            "fallback must not change the scan"
        );
        let trace = obs.flight_jsonl();
        assert!(trace.contains("\"type\":\"scalar_fallback\""), "{trace}");
        assert!(
            trace.contains(&format!("\"threshold\":{PARALLEL_THRESHOLD}")),
            "{trace}"
        );

        let disabled = Obs::disabled();
        let mut again = RoundScratch::new();
        again.load_participants(&population);
        run_round_parallel_observed(&mut again, ch.frame_size(), ch.nonces(), &disabled).unwrap();
        assert!(disabled.flight_jsonl().is_empty());
    }

    #[test]
    fn every_announcement_merges_identically() {
        // Attribution-level check: per-announcement member lists (the
        // strongest observable of scanner behaviour) must match between
        // sequential and awkward chunkings (chunk=1 maximizes chunk
        // count; chunk=7 leaves a ragged tail).
        let ch = challenge(80, 9);
        let population = parts(150);

        let mut seq_replies: Vec<(u64, Vec<u32>)> = Vec::new();
        let mut seq = RoundScratch::new();
        seq.load_participants(&population);
        seq.run_attributed_with(ch.frame_size(), ch.nonces(), sequential_min_scan, |s, m| {
            seq_replies.push((s, m.to_vec()));
        })
        .unwrap();

        for chunk in [1usize, 7, 64, 1024] {
            let mut replies: Vec<(u64, Vec<u32>)> = Vec::new();
            let mut scratch = RoundScratch::new();
            scratch.load_participants(&population);
            scratch
                .run_attributed_with(
                    ch.frame_size(),
                    ch.nonces(),
                    |job, members| chunked_min_scan(job, chunk, members),
                    |s, m| replies.push((s, m.to_vec())),
                )
                .unwrap();
            assert_eq!(replies, seq_replies, "chunk={chunk}");
        }
    }

    #[test]
    fn observed_chunked_round_is_bit_identical_and_probe_invariant() {
        let ch = challenge(96, 6);
        let population = parts(400);

        let seq_obs = Obs::new();
        let mut seq = RoundScratch::new();
        seq.load_participants(&population);
        let seq_ann = seq
            .run_observed(ch.frame_size(), ch.nonces(), &seq_obs)
            .unwrap();
        let seq_probes = seq_obs.counter(seq_obs.m.probes_total);
        assert!(seq_probes > 0, "counting scan must count");

        for chunk in [1usize, 7, 64] {
            let obs = Obs::new();
            let mut scratch = RoundScratch::new();
            scratch.load_participants(&population);
            let ann =
                run_round_chunked_observed(&mut scratch, ch.frame_size(), ch.nonces(), chunk, &obs)
                    .unwrap();
            assert_eq!(ann, seq_ann, "chunk={chunk}");
            assert_eq!(scratch.bitstring(), seq.bitstring(), "chunk={chunk}");
            // Probes are chunking-invariant (every active tag is probed
            // once per announcement regardless of chunk boundaries);
            // filtered counts are not (per-chunk filter warm-up).
            assert_eq!(obs.counter(obs.m.probes_total), seq_probes, "chunk={chunk}");
        }
    }

    #[test]
    fn observed_round_with_disabled_obs_matches_plain() {
        let ch = challenge(64, 8);
        let population = parts(120);
        let obs = Obs::disabled();

        let mut plain = RoundScratch::new();
        plain.load_participants(&population);
        plain.run(ch.frame_size(), ch.nonces()).unwrap();

        let mut observed = RoundScratch::new();
        observed.load_participants(&population);
        run_round_chunked_observed(&mut observed, ch.frame_size(), ch.nonces(), 16, &obs).unwrap();
        assert_eq!(plain.bitstring(), observed.bitstring());
        assert_eq!(obs.counter(obs.m.probes_total), 0);
    }

    #[test]
    fn empty_job_returns_none() {
        let ch = challenge(16, 4);
        let mut scratch = RoundScratch::new();
        scratch.load_pairs(std::iter::empty());
        let ann = run_round_parallel(&mut scratch, ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(ann, 1);
        assert_eq!(scratch.bitstring().count_ones(), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn threshold_keeps_small_scans_sequential() {
        // Not directly observable from outputs (they're identical by
        // design); assert the constant is sane so a refactor can't
        // silently set it to 0 and fan out every tiny scan.
        assert!(PARALLEL_THRESHOLD >= 1024);
    }
}
