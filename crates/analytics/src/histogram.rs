//! Fixed-bin histograms and exact percentiles for experiment outputs.
//!
//! The implementation lives in [`tagwatch_obs::histogram`] — the
//! metrics registry uses the exact same [`Histogram`] type as its
//! backing store, so a histogram recorded by telemetry and one built
//! by an experiment report are interchangeable (and mergeable via
//! [`Histogram::merge`]). This module re-exports it under the
//! long-standing `analytics::histogram` path.

pub use tagwatch_obs::histogram::{percentile, Histogram};

#[cfg(test)]
mod tests {
    use super::*;

    // The full unit suite lives with the implementation in
    // `tagwatch_obs::histogram`; this is a smoke check that the
    // re-exported path behaves.
    #[test]
    fn reexported_histogram_records_and_merges() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.extend([1.0, 2.5]);
        let mut b = Histogram::new(0.0, 10.0, 5);
        b.record(7.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.5), Some(2.0));
    }
}
