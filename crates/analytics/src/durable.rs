//! Crash-safe durable soak runs: WAL journaling, checkpointed warm
//! restart, and corruption-fault recovery.
//!
//! [`run_soak_durable`] is the non-breaking durable twin of
//! [`run_soak`](crate::soak::run_soak) (the same `*_observed` pattern
//! the telemetry layer uses): it executes the identical tick sequence
//! while journaling every tick's event line into a `tagwatch-store`
//! write-ahead log, with a full driver checkpoint every
//! [`DurableConfig::checkpoint_every`] ticks. A scripted
//! [`StorageFaultPlan`] can kill the run just before any tick — and
//! optionally damage the persisted bytes the way a power cut or media
//! fault would (torn write, bit flip, truncated tail).
//!
//! [`resume_soak_durable`] is the recovery manager. It scans the WAL
//! back to its longest intact prefix (excising any damaged tail with
//! an attributable [`RecoveryNote`] — never a silent false "intact"),
//! rebuilds the driver from the last intact checkpoint, re-seeds the
//! report log from the recorded tick lines, **re-executes** every
//! recorded tick past the checkpoint while byte-comparing each
//! regenerated line against the journal (any mismatch is a
//! [`DurableError::Divergence`], not a shrug), and then runs the
//! remaining ticks to completion. The contract, enforced by tests and
//! the `recovery-smoke` CI job: the resumed run's [`SoakReport`] —
//! log, digest, JSON — is byte-identical to the never-crashed
//! baseline's.
//!
//! [`RecoveryNote`]: tagwatch_store::RecoveryNote

use std::fmt;

use tagwatch_core::CoreError;
use tagwatch_obs::{Obs, ObsEvent};
use tagwatch_sim::StorageFaultPlan;
use tagwatch_store::checkpoint::CheckpointDoc;
use tagwatch_store::recovery::recover;
use tagwatch_store::wal::{RecordKind, WalWriter};
use tagwatch_store::StoreError;

use crate::policy::Policy;
use crate::session::TickProtocol;
use crate::soak::{checkpoint_next_tick, SoakConfig, SoakDriver, SoakReport};

/// Magic first line of the WAL's config record.
const CONFIG_HEADER: &str = "tagwatch-soak-config v1";

/// Parameters of one durable soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableConfig {
    /// The soak to run (identical semantics to [`crate::soak`]).
    pub soak: SoakConfig,
    /// Ticks between full driver checkpoints (tick 0 always gets one).
    /// Smaller values bound replay work after a crash at the cost of
    /// larger logs; must be positive.
    pub checkpoint_every: u64,
    /// Scripted crash/corruption schedule (empty = run to completion
    /// with undamaged bytes).
    pub fault: StorageFaultPlan,
    /// The declarative policy the session interprets; `None` runs the
    /// config-derived legacy defaults. Persisted in the WAL's config
    /// record so `recover` replays under exactly this policy.
    pub policy: Option<Policy>,
}

impl Default for DurableConfig {
    /// Default soak, a checkpoint every 25 ticks, no scripted faults.
    fn default() -> Self {
        DurableConfig {
            soak: SoakConfig::default(),
            checkpoint_every: 25,
            fault: StorageFaultPlan::new(),
            policy: None,
        }
    }
}

impl DurableConfig {
    fn validate(&self) -> Result<(), DurableError> {
        if self.checkpoint_every == 0 {
            return Err(DurableError::Config {
                reason: "checkpoint_every must be positive".to_string(),
            });
        }
        self.fault.validate().map_err(|e| DurableError::Config {
            reason: format!("storage fault plan: {e}"),
        })?;
        if let Some(policy) = &self.policy {
            policy.validate().map_err(|e| DurableError::Config {
                reason: format!("policy rejected: {e}"),
            })?;
        }
        self.soak.validate()?;
        Ok(())
    }

    /// The policy this run's session interprets: the explicit one, or
    /// the config-derived legacy defaults.
    fn effective_policy(&self) -> Policy {
        self.policy
            .clone()
            .unwrap_or_else(|| SoakDriver::derive_policy(&self.soak))
    }
}

/// The outcome of a durable run: either a completed report or the
/// point of interruption, plus the WAL bytes as they would exist on
/// disk (scripted damage already applied).
#[derive(Debug, Clone, PartialEq)]
pub struct DurableOutcome {
    /// The completed report; `None` when the scripted crash fired.
    pub report: Option<SoakReport>,
    /// The persisted WAL bytes (after any scripted damage).
    pub wal: Vec<u8>,
    /// The tick the crash pre-empted, when it fired.
    pub interrupted_at: Option<u64>,
}

/// The outcome of resuming a WAL: the (completed) report plus an
/// attributable account of what recovery had to do.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeOutcome {
    /// The completed report — byte-identical to the uninterrupted
    /// run's.
    pub report: SoakReport,
    /// Human-readable recovery notes, one per excised damage region
    /// (empty when the WAL tail was intact).
    pub recovery: Vec<String>,
    /// The checkpoint tick the driver restarted from (0 = cold start).
    pub resumed_from: u64,
    /// Recorded ticks re-executed and byte-verified against the
    /// journal.
    pub replayed_ticks: u64,
    /// The repaired and completed WAL bytes.
    pub wal: Vec<u8>,
    /// The policy the resumed run finished under — carried by the WAL
    /// (config record and checkpoints), never re-derived from ambient
    /// defaults.
    pub policy: Policy,
}

/// Failures of the durable layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableError {
    /// The [`DurableConfig`] itself is unusable.
    Config {
        /// What was wrong with it.
        reason: String,
    },
    /// The WAL's records are individually intact but semantically
    /// inconsistent (e.g. the config record is missing or duplicated).
    MalformedWal {
        /// What recovery found.
        reason: String,
    },
    /// The underlying soak rejected its configuration or a protocol
    /// step failed.
    Core(CoreError),
    /// WAL or checkpoint framing failed.
    Store(StoreError),
    /// Replaying a recorded tick regenerated a different event line —
    /// the WAL and the code disagree about history, which recovery
    /// surfaces rather than papers over.
    Divergence {
        /// The tick whose replay diverged.
        tick: u64,
        /// The line the WAL recorded.
        recorded: String,
        /// The line replay produced.
        regenerated: String,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Config { reason } => write!(f, "invalid durable config: {reason}"),
            DurableError::MalformedWal { reason } => write!(f, "malformed WAL: {reason}"),
            DurableError::Core(e) => write!(f, "soak failed: {e}"),
            DurableError::Store(e) => write!(f, "store failed: {e}"),
            DurableError::Divergence {
                tick,
                recorded,
                regenerated,
            } => write!(
                f,
                "replay diverged at tick {tick}: WAL recorded `{recorded}`, \
                 replay produced `{regenerated}`"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<CoreError> for DurableError {
    fn from(e: CoreError) -> Self {
        DurableError::Core(e)
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

fn malformed(reason: String) -> DurableError {
    DurableError::MalformedWal { reason }
}

/// Serializes the run parameters into the WAL's first record, so a WAL
/// is self-contained: resume needs nothing but the bytes. An explicit
/// policy rides along as `policy.<key>` lines (absent for legacy
/// default runs, keeping their WAL bytes unchanged).
fn encode_config(config: &DurableConfig) -> String {
    let c = &config.soak;
    let protocol = match c.protocol {
        TickProtocol::Trp => "trp",
        TickProtocol::Utrp => "utrp",
    };
    let mut out = format!(
        "{CONFIG_HEADER}\nseed {}\nticks {}\nn {}\nm {}\nalpha {}\nprotocol {protocol}\n\
         burst_period {}\ntheft_period {}\ntheft_size {}\ndetection_deadline {}\n\
         desync_window {}\nattribution_window {}\ncheckpoint_every {}\n",
        c.seed,
        c.ticks,
        c.n,
        c.m,
        c.alpha,
        c.burst_period,
        c.theft_period,
        c.theft_size,
        c.detection_deadline,
        c.desync_window,
        c.attribution_window,
        config.checkpoint_every,
    );
    if let Some(policy) = &config.policy {
        for line in policy.to_flat_lines() {
            out.push_str("policy.");
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parses a config record back. The storage fault plan is a property
/// of the *run*, not the state, so it is never persisted: decoded
/// configs carry an empty plan.
fn decode_config(payload: &[u8]) -> Result<DurableConfig, DurableError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| malformed("config record is not UTF-8".to_string()))?;
    let mut lines = text.lines();
    if lines.next() != Some(CONFIG_HEADER) {
        return Err(malformed(format!(
            "config record does not open with `{CONFIG_HEADER}`"
        )));
    }
    let mut config = DurableConfig::default();
    let mut seen = 0u32;
    let mut policy_lines: Vec<String> = Vec::new();
    for line in lines {
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| malformed(format!("config line `{line}` has no value")))?;
        let bad = || malformed(format!("config `{key}` has bad value `{value}`"));
        if let Some(policy_key) = key.strip_prefix("policy.") {
            policy_lines.push(format!("{policy_key} {value}"));
            continue;
        }
        seen += 1;
        match key {
            "seed" => config.soak.seed = value.parse().map_err(|_| bad())?,
            "ticks" => config.soak.ticks = value.parse().map_err(|_| bad())?,
            "n" => config.soak.n = value.parse().map_err(|_| bad())?,
            "m" => config.soak.m = value.parse().map_err(|_| bad())?,
            "alpha" => config.soak.alpha = value.parse().map_err(|_| bad())?,
            "protocol" => {
                config.soak.protocol = match value {
                    "trp" => TickProtocol::Trp,
                    "utrp" => TickProtocol::Utrp,
                    _ => return Err(bad()),
                }
            }
            "burst_period" => config.soak.burst_period = value.parse().map_err(|_| bad())?,
            "theft_period" => config.soak.theft_period = value.parse().map_err(|_| bad())?,
            "theft_size" => config.soak.theft_size = value.parse().map_err(|_| bad())?,
            "detection_deadline" => {
                config.soak.detection_deadline = value.parse().map_err(|_| bad())?;
            }
            "desync_window" => config.soak.desync_window = value.parse().map_err(|_| bad())?,
            "attribution_window" => {
                config.soak.attribution_window = value.parse().map_err(|_| bad())?;
            }
            "checkpoint_every" => config.checkpoint_every = value.parse().map_err(|_| bad())?,
            _ => return Err(malformed(format!("config has unknown key `{key}`"))),
        }
    }
    if seen != 13 {
        return Err(malformed(format!(
            "config record has {seen} fields, expected 13"
        )));
    }
    if !policy_lines.is_empty() {
        let policy = Policy::from_flat_lines(&policy_lines)
            .map_err(|e| malformed(format!("config policy: {e}")))?;
        config.policy = Some(policy);
    }
    Ok(config)
}

/// Frames one tick record: the tick index (u64 LE) followed by the
/// tick's event-log line, verbatim.
fn tick_payload(t: u64, line: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + line.len());
    payload.extend_from_slice(&t.to_le_bytes());
    payload.extend_from_slice(line.as_bytes());
    payload
}

fn decode_tick(payload: &[u8]) -> Result<(u64, String), DurableError> {
    if payload.len() < 8 {
        return Err(malformed(
            "tick record shorter than its tick index".to_string(),
        ));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&payload[..8]);
    let line = std::str::from_utf8(&payload[8..])
        .map_err(|_| malformed("tick record line is not UTF-8".to_string()))?;
    Ok((u64::from_le_bytes(raw), line.to_string()))
}

/// [`run_soak_durable_observed`] with telemetry disabled.
///
/// # Errors
///
/// See [`run_soak_durable_observed`].
pub fn run_soak_durable(config: &DurableConfig) -> Result<DurableOutcome, DurableError> {
    run_soak_durable_observed(config, &Obs::disabled())
}

/// Runs a soak while journaling it to a write-ahead log: a config
/// record first (the WAL is self-contained), a full checkpoint before
/// every `checkpoint_every`-th tick, and one tick record after every
/// tick. With an empty fault plan the returned report is **equal** to
/// [`run_soak`](crate::soak::run_soak)'s for the same [`SoakConfig`] —
/// durability costs serialization, never behavior.
///
/// When the scripted crash fires, the run stops *before* that tick
/// (no checkpoint, no tick record for it), applies any scripted
/// damage to the persisted bytes, and returns them with
/// [`DurableOutcome::interrupted_at`] set — exactly what a process
/// kill at that instant would leave on disk.
///
/// # Errors
///
/// Returns [`DurableError::Config`] for an unusable [`DurableConfig`]
/// and propagates soak/store failures.
pub fn run_soak_durable_observed(
    config: &DurableConfig,
    obs: &Obs,
) -> Result<DurableOutcome, DurableError> {
    config.validate()?;
    let mut wal = WalWriter::new();
    wal.append(RecordKind::Config, encode_config(config).as_bytes());
    let mut driver = SoakDriver::with_policy(&config.soak, config.effective_policy(), obs)?;
    for t in 0..config.soak.ticks {
        if config.fault.crash_tick() == Some(t) {
            let mut bytes = wal.into_bytes();
            config.fault.apply_damage(&mut bytes);
            return Ok(DurableOutcome {
                report: None,
                wal: bytes,
                interrupted_at: Some(t),
            });
        }
        if t.is_multiple_of(config.checkpoint_every) {
            wal.append(
                RecordKind::Checkpoint,
                &driver.capture_checkpoint(t)?.to_bytes(),
            );
        }
        driver.step(t)?;
        wal.append(RecordKind::Tick, &tick_payload(t, driver.last_log_line()));
    }
    let report = driver.finish();
    let mut bytes = wal.into_bytes();
    config.fault.apply_damage(&mut bytes);
    Ok(DurableOutcome {
        report: Some(report),
        wal: bytes,
        interrupted_at: None,
    })
}

/// [`resume_soak_durable_observed`] with telemetry disabled.
///
/// # Errors
///
/// See [`resume_soak_durable_observed`].
pub fn resume_soak_durable(wal_bytes: &[u8]) -> Result<ResumeOutcome, DurableError> {
    resume_soak_durable_observed(wal_bytes, &Obs::disabled())
}

/// Warm-restarts a soak from its WAL and runs it to completion.
///
/// Recovery proceeds in five steps, none of which can silently accept
/// damage:
///
/// 1. **Scan** — [`recover`] walks the WAL to its longest intact
///    prefix; any excised tail yields a recovery note (returned on
///    [`ResumeOutcome::recovery`], journaled as a note record, and
///    emitted as [`ObsEvent::StoreRecovered`] on instrumented runs).
/// 2. **Restore** — the driver is rebuilt from the last intact
///    checkpoint (or cold-started when none survived).
/// 3. **Re-seed** — the report log's prefix is taken verbatim from
///    the recorded tick lines before the checkpoint.
/// 4. **Replay** — recorded ticks at/after the checkpoint are
///    re-executed and each regenerated line byte-compared against the
///    journal; a mismatch is a [`DurableError::Divergence`].
/// 5. **Continue** — the remaining ticks run (and journal) normally.
///
/// The returned report is byte-identical — log, digest, JSON — to the
/// run that was never interrupted.
///
/// # Errors
///
/// Returns [`DurableError::Store`] for an unrecoverable stream (bad
/// header), [`DurableError::MalformedWal`] when no intact config
/// record survives or the record sequence is inconsistent, and
/// [`DurableError::Divergence`] when replay contradicts the journal.
pub fn resume_soak_durable_observed(
    wal_bytes: &[u8],
    obs: &Obs,
) -> Result<ResumeOutcome, DurableError> {
    let recovered = recover(wal_bytes)?;
    let mut recovery = Vec::new();
    if let Some(note) = recovered.note {
        obs.emit(ObsEvent::StoreRecovered {
            kind: note.kind.code(),
            offset: note.offset,
            dropped: note.dropped_bytes,
        });
        recovery.push(note.describe());
    }

    let mut config: Option<DurableConfig> = None;
    let mut last_checkpoint: Option<CheckpointDoc> = None;
    let mut ticks: Vec<(u64, String)> = Vec::new();
    for record in &recovered.records {
        match record.kind {
            RecordKind::Config => {
                if config.is_some() {
                    return Err(malformed("duplicate config record".to_string()));
                }
                config = Some(decode_config(&record.payload)?);
            }
            RecordKind::Checkpoint => {
                last_checkpoint = Some(CheckpointDoc::parse(&record.payload)?);
            }
            RecordKind::Tick => ticks.push(decode_tick(&record.payload)?),
            // Notes document previous recoveries; they carry no state.
            RecordKind::Note => {}
        }
    }
    let config = config
        .ok_or_else(|| malformed("no intact config record; nothing to resume".to_string()))?;
    config.validate()?;
    for (i, (t, _)) in ticks.iter().enumerate() {
        if *t != i as u64 {
            return Err(malformed(format!(
                "tick records not contiguous: record {i} holds tick {t}"
            )));
        }
    }
    if ticks.len() as u64 > config.soak.ticks {
        return Err(malformed(format!(
            "WAL records {} ticks but the config runs only {}",
            ticks.len(),
            config.soak.ticks
        )));
    }

    let (mut driver, resumed_from) = match &last_checkpoint {
        Some(doc) => {
            let next = checkpoint_next_tick(doc)?;
            if next as usize > ticks.len() {
                return Err(malformed(format!(
                    "checkpoint expects tick {next} next but only {} ticks are recorded",
                    ticks.len()
                )));
            }
            (SoakDriver::from_checkpoint(&config.soak, obs, doc)?, next)
        }
        None => (
            SoakDriver::with_policy(&config.soak, config.effective_policy(), obs)?,
            0,
        ),
    };
    driver.seed_log(
        ticks
            .iter()
            .take(resumed_from as usize)
            .map(|(_, line)| line.clone())
            .collect(),
    );

    let mut wal = WalWriter::from_bytes(wal_bytes[..recovered.valid_len].to_vec())?;
    if let Some(note) = recovered.note {
        wal.append(
            RecordKind::Note,
            format!("recovered: {}", note.describe()).as_bytes(),
        );
    }
    wal.append(
        RecordKind::Note,
        format!(
            "resumed from checkpoint tick {resumed_from} with {} recorded tick(s)",
            ticks.len()
        )
        .as_bytes(),
    );

    let mut replayed_ticks = 0u64;
    for (t, line) in ticks.iter().skip(resumed_from as usize) {
        driver.step(*t)?;
        let regenerated = driver.last_log_line();
        if regenerated != line {
            return Err(DurableError::Divergence {
                tick: *t,
                recorded: line.clone(),
                regenerated: regenerated.to_string(),
            });
        }
        replayed_ticks += 1;
    }

    for t in ticks.len() as u64..config.soak.ticks {
        if t.is_multiple_of(config.checkpoint_every) {
            wal.append(
                RecordKind::Checkpoint,
                &driver.capture_checkpoint(t)?.to_bytes(),
            );
        }
        driver.step(t)?;
        wal.append(RecordKind::Tick, &tick_payload(t, driver.last_log_line()));
    }

    let policy = driver.policy().clone();
    Ok(ResumeOutcome {
        report: driver.finish(),
        recovery,
        resumed_from,
        replayed_ticks,
        wal: wal.into_bytes(),
        policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soak::run_soak;
    use tagwatch_sim::StorageFault;

    fn short() -> SoakConfig {
        SoakConfig {
            ticks: 60,
            n: 30,
            burst_period: 15,
            theft_period: 30,
            ..SoakConfig::default()
        }
    }

    fn durable(fault: StorageFaultPlan) -> DurableConfig {
        DurableConfig {
            soak: short(),
            checkpoint_every: 25,
            fault,
            policy: None,
        }
    }

    #[test]
    fn durable_run_without_faults_matches_run_soak_exactly() {
        let config = durable(StorageFaultPlan::new());
        let baseline = run_soak(&config.soak).unwrap();
        let outcome = run_soak_durable(&config).unwrap();
        assert_eq!(outcome.interrupted_at, None);
        let report = outcome.report.expect("uninterrupted run completes");
        assert_eq!(report, baseline, "durability must not change behavior");
        assert_eq!(report.to_json(), baseline.to_json());

        // The WAL is intact, self-describing, and replayable: resuming
        // a *complete* WAL re-verifies every recorded tick.
        let resumed = resume_soak_durable(&outcome.wal).unwrap();
        assert!(resumed.recovery.is_empty());
        assert_eq!(resumed.report, baseline);
        assert_eq!(resumed.resumed_from, 50, "last checkpoint at tick 50");
        assert_eq!(resumed.replayed_ticks, 10);
    }

    #[test]
    fn crash_then_resume_reproduces_the_baseline_digest() {
        let baseline = run_soak(&short()).unwrap();
        // One mid-run crash (between checkpoints); the exhaustive
        // kill-at-every-tick sweep lives in tests/durability.rs.
        let config = durable(StorageFaultPlan::new().crash_at_tick(33));
        let outcome = run_soak_durable(&config).unwrap();
        assert_eq!(outcome.interrupted_at, Some(33));
        assert!(outcome.report.is_none());

        let resumed = resume_soak_durable(&outcome.wal).unwrap();
        assert!(resumed.recovery.is_empty(), "clean kill leaves intact WAL");
        assert_eq!(resumed.resumed_from, 25);
        assert_eq!(resumed.replayed_ticks, 8);
        assert_eq!(resumed.report.log, baseline.log);
        assert_eq!(resumed.report.digest(), baseline.digest());
        assert_eq!(resumed.report.to_json(), baseline.to_json());
    }

    #[test]
    fn damaged_tails_are_excised_attributed_and_resumed() {
        let baseline = run_soak(&short()).unwrap();
        let cases: Vec<(StorageFault, &str)> = vec![
            (StorageFault::TornWrite { drop_bytes: 7 }, "torn"),
            (
                StorageFault::BitFlip {
                    offset_from_end: 20,
                    bit: 3,
                },
                "checksum-mismatch",
            ),
            (StorageFault::TruncateTail { drop_bytes: 200 }, "torn"),
        ];
        for (fault, expected) in cases {
            let config = durable(StorageFaultPlan::new().crash_at_tick(45).with_damage(fault));
            let outcome = run_soak_durable(&config).unwrap();
            let resumed = resume_soak_durable(&outcome.wal).unwrap();
            assert_eq!(
                resumed.recovery.len(),
                1,
                "{fault:?} must be surfaced, never silent"
            );
            assert!(
                resumed.recovery[0].contains(expected),
                "{fault:?} produced {:?}",
                resumed.recovery
            );
            assert_eq!(resumed.report.log, baseline.log, "{fault:?}");
            assert_eq!(resumed.report.digest(), baseline.digest(), "{fault:?}");
        }
    }

    #[test]
    fn observed_resume_emits_store_recovered_and_matches_plain() {
        let config = durable(
            StorageFaultPlan::new()
                .crash_at_tick(40)
                .with_damage(StorageFault::TornWrite { drop_bytes: 11 }),
        );
        let outcome = run_soak_durable(&config).unwrap();
        let plain = resume_soak_durable(&outcome.wal).unwrap();
        let obs = Obs::new();
        let observed = resume_soak_durable_observed(&outcome.wal, &obs).unwrap();
        assert_eq!(observed.report.log, plain.report.log);
        assert_eq!(observed.recovery, plain.recovery);
        assert!(
            obs.flight_jsonl().contains("\"type\":\"store_recovered\""),
            "recovery must leave an attributable telemetry trace"
        );
    }

    #[test]
    fn destroyed_config_record_is_unrecoverable_not_silent() {
        let config = durable(StorageFaultPlan::new());
        let outcome = run_soak_durable(&config).unwrap();
        let mut bytes = outcome.wal;
        // Flip a bit inside the config record (the first record).
        bytes[tagwatch_store::WAL_HEADER_LEN + 6] ^= 0x10;
        match resume_soak_durable(&bytes) {
            Err(DurableError::MalformedWal { reason }) => {
                assert!(reason.contains("no intact config record"), "{reason}");
            }
            other => panic!("expected MalformedWal, got {other:?}"),
        }
    }

    #[test]
    fn invalid_durable_configs_are_rejected() {
        let zero_checkpoint = DurableConfig {
            checkpoint_every: 0,
            ..durable(StorageFaultPlan::new())
        };
        assert!(matches!(
            run_soak_durable(&zero_checkpoint),
            Err(DurableError::Config { .. })
        ));
        let bad_bit = durable(StorageFaultPlan::new().crash_at_tick(5).with_damage(
            StorageFault::BitFlip {
                offset_from_end: 0,
                bit: 9,
            },
        ));
        assert!(matches!(
            run_soak_durable(&bad_bit),
            Err(DurableError::Config { .. })
        ));
        let zero_ticks = DurableConfig {
            soak: SoakConfig {
                ticks: 0,
                ..SoakConfig::default()
            },
            ..DurableConfig::default()
        };
        assert!(matches!(
            run_soak_durable(&zero_ticks),
            Err(DurableError::Core(_))
        ));
    }

    #[test]
    fn config_record_round_trips_and_rejects_garbage() {
        let config = DurableConfig {
            soak: SoakConfig {
                seed: 9,
                alpha: 0.875,
                protocol: TickProtocol::Trp,
                ..short()
            },
            checkpoint_every: 7,
            fault: StorageFaultPlan::new().crash_at_tick(3),
            policy: None,
        };
        let decoded = decode_config(encode_config(&config).as_bytes()).unwrap();
        assert_eq!(decoded.soak, config.soak);
        assert_eq!(decoded.checkpoint_every, config.checkpoint_every);
        assert!(decoded.fault.is_empty(), "fault plans are never persisted");
        assert_eq!(decoded.policy, None, "legacy configs carry no policy");

        assert!(decode_config(b"not a config").is_err());
        assert!(decode_config("tagwatch-soak-config v1\nseed 1\n".as_bytes()).is_err());
        assert!(decode_config(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn config_record_carries_an_explicit_policy() {
        let mut policy = SoakDriver::derive_policy(&short());
        policy.site = "warehouse-7".to_string();
        policy.alarms_to_escalate = 5;
        let config = DurableConfig {
            soak: short(),
            policy: Some(policy.clone()),
            ..DurableConfig::default()
        };
        let encoded = encode_config(&config);
        assert!(encoded.contains("policy.site warehouse-7"));
        let decoded = decode_config(encoded.as_bytes()).unwrap();
        assert_eq!(decoded.policy, Some(policy));

        let mangled = encoded.replace("policy.site warehouse-7", "policy.color blue");
        assert!(decode_config(mangled.as_bytes()).is_err());
    }

    #[test]
    fn crashed_policy_run_resumes_under_the_same_policy() {
        let mut policy = SoakDriver::derive_policy(&short());
        policy.site = "aisle-3".to_string();
        policy.alarms_to_escalate = 3;
        let config = DurableConfig {
            soak: short(),
            checkpoint_every: 13,
            fault: StorageFaultPlan::new().crash_at_tick(33),
            policy: Some(policy.clone()),
        };
        let baseline = {
            let complete = DurableConfig {
                fault: StorageFaultPlan::new(),
                ..config.clone()
            };
            run_soak_durable(&complete)
                .unwrap()
                .report
                .expect("uninterrupted run completes")
        };

        let outcome = run_soak_durable(&config).unwrap();
        assert_eq!(outcome.interrupted_at, Some(33));
        let resumed = resume_soak_durable(&outcome.wal).unwrap();
        assert_eq!(resumed.policy, policy, "WAL must carry the exact policy");
        assert_eq!(resumed.report.log, baseline.log);
        assert_eq!(resumed.report.digest(), baseline.digest());

        // A crash before the first checkpoint cold-starts from the
        // config record alone — the policy must survive that path too.
        let early = DurableConfig {
            fault: StorageFaultPlan::new().crash_at_tick(0),
            ..config.clone()
        };
        let outcome = run_soak_durable(&early).unwrap();
        let resumed = resume_soak_durable(&outcome.wal).unwrap();
        assert_eq!(resumed.resumed_from, 0);
        assert_eq!(resumed.policy, policy);
        assert_eq!(resumed.report.digest(), baseline.digest());
    }

    #[test]
    fn degenerate_policy_is_rejected_before_any_bytes_are_written() {
        let mut policy = SoakDriver::derive_policy(&short());
        policy.alarms_to_escalate = 0;
        let config = DurableConfig {
            soak: short(),
            policy: Some(policy),
            ..DurableConfig::default()
        };
        assert!(matches!(
            run_soak_durable(&config),
            Err(DurableError::Config { .. })
        ));
    }
}
