//! Deterministic parallel fan-out for Monte-Carlo trials.
//!
//! [`parallel_map`] runs a function over an index range on all available
//! cores, returning results **in index order** — combined with
//! [`SeedSequence`](tagwatch_sim::SeedSequence)-derived per-trial seeds,
//! an experiment produces bit-identical output whether it runs on 1
//! thread or 64.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// Number of worker threads used by [`parallel_map`]: the machine's
/// available parallelism, capped at 32 (Monte-Carlo trials are compute
/// bound; oversubscription buys nothing).
#[must_use]
pub fn worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(32)
}

/// Maps `f` over `0..count` in parallel, returning results in index
/// order.
///
/// `f` must be `Sync` (shared across workers) and is called exactly once
/// per index. Panics in `f` propagate to the caller after all workers
/// stop.
pub fn parallel_map<R, F>(count: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let threads = worker_threads().min(count.max(1) as usize);
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(u64, R)>();
    // std::thread::scope re-raises any worker panic when the scope
    // closes, so a panicking `f` still propagates to the caller.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                // Send failure means the receiver is gone (caller
                // panicked); just stop.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        for (i, r) in rx {
            slots[i as usize] = Some(r);
        }
        slots
            .into_iter()
            // lint:allow(s2-panic): the scatter loop sends exactly one result per index in 0..count, so every slot is filled before the channel closes
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    })
}

/// Counts how many of `0..count` indices satisfy `pred`, in parallel.
pub fn parallel_count<F>(count: u64, pred: F) -> u64
where
    F: Fn(u64) -> bool + Sync,
{
    parallel_map(count, pred).into_iter().filter(|&b| b).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let out = parallel_map(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 2);
        }
    }

    #[test]
    fn zero_count_is_empty() {
        let out: Vec<u64> = parallel_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(1, |i| i + 9), vec![9]);
    }

    #[test]
    fn matches_sequential_execution() {
        let seq: Vec<u64> = (0..500).map(|i| i * i % 97).collect();
        let par = parallel_map(500, |i| i * i % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn count_counts() {
        assert_eq!(parallel_count(100, |i| i % 4 == 0), 25);
        assert_eq!(parallel_count(0, |_| true), 0);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn heavy_closure_is_shared_not_cloned() {
        // A closure capturing a large read-only table by reference.
        let table: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(64, |i| table[i as usize * 100]);
        assert_eq!(out[1], 100);
    }
}
