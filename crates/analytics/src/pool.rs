//! The multi-core round engine: a persistent, dependency-free worker
//! pool driving sharded UTRP rounds, bit-identical to the scalar
//! [`RoundScratch`] at any thread count.
//!
//! ## Why a persistent pool
//!
//! The per-announcement minimum scan is short — a million-tag round
//! opens at ~1 ms of probe work and *shrinks* every announcement as
//! tags retire. A `std::thread::scope` fan-out (as
//! [`crate::parallel`] uses for coarse Monte-Carlo trials) pays a
//! spawn + join round trip per call, tens of microseconds, which at
//! per-announcement granularity erases the parallel win. The
//! [`PooledEngine`] spawns its workers **once**; between announcements
//! they park on a blocking channel `recv`, so per-announcement
//! dispatch is two channel hops per worker and no thread is ever
//! created on the hot path.
//!
//! ## Why worker-owned shards
//!
//! The workspace forbids `unsafe` (lint rule s1), so scoped borrows of
//! the active arrays cannot be smuggled across `'static` worker
//! threads. Instead each worker **owns** its shard of the active-tag
//! arrays (`folded`/`bases`, copied once per round at load), and all
//! round state that crosses threads is plain `Copy` data
//! ([`ScanParams`], slots, [`ScanStats`]). Retirement (`swap_remove`)
//! and every re-seed scan stay local to a shard; nothing is shared,
//! nothing is locked.
//!
//! ## Determinism
//!
//! The merge is the index-ordered discipline proven in
//! [`crate::scan`]: the global minimum is the min over shard minima,
//! and the winners are exactly the members of every shard whose
//! minimum equals it. A round's observables — bitstring,
//! announcement count, probe totals — depend only on the *set* of
//! active tags per announcement, never on array order or shard
//! boundaries, so any shard count (including 1, the scalar engine)
//! produces byte-identical results. The serial skeleton (nonce order,
//! sub-frame shrinking, uniform-key collapse) is not reimplemented: it
//! is the same [`SubframeCursor`] the scalar engine runs.
//!
//! Probe accounting keeps the established contract
//! (see [`crate::scan::chunked_min_scan_counting`]): `probes` is
//! thread-invariant (`Σ active_i` for any exact engine), while
//! `filtered` is strategy-dependent diagnostics (the candidate filter
//! warms up per shard).
//!
//! ## Small rounds fall back to scalar
//!
//! Below [`POOL_THRESHOLD`] active tags the dispatch round trip would
//! cost more than the round itself, so the engine runs its embedded
//! scalar [`RoundScratch`] instead — same results, with the fallback
//! counted on [`PooledEngine::scalar_fallbacks`]. The engine never
//! writes fallback events into `obs`: an exact engine must be
//! observably indistinguishable from the scalar engine at every
//! thread count, or the committed golden digests would fork on the
//! operator's `--threads` choice. The flight-ring
//! `ObsEvent::ScalarFallback` event lives in the reference scanner's
//! observed entry point instead
//! ([`crate::scan::run_round_parallel_observed`]). A pool configured
//! with `threads <= 1` never spawns workers and *is* the scalar
//! engine (no fallback accounting: scalar is the chosen path, not a
//! fallback).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use tagwatch_core::engine::{
    RoundEngine, RoundScratch, ScanJob, ScanParams, ScanStats, SubframeCursor,
};
use tagwatch_core::nonce::NonceSequence;
use tagwatch_core::{Bitstring, CoreError};
use tagwatch_obs::Obs;
use tagwatch_sim::{Counter, FrameSize, TagId, TagPopulation};

/// Active-set size below which a pooled round runs on the embedded
/// scalar engine instead of dispatching to the workers.
///
/// Derived from measurement on the perf harness (see
/// `docs/PERFORMANCE.md`): one Scan dispatch round trip over parked
/// workers costs ~5–15 µs (two channel hops per worker plus wake-up),
/// while the batched scalar kernel probes ~1.2–1.9 ns/tag — so a scan
/// must cover at least a few thousand tags per announcement before the
/// pool can pay for its dispatch, and a comfortable margin on top of
/// the break-even keeps the cliff well away from jitter. At 8192
/// actives the first announcement alone is ~12 µs of probe work and a
/// full round is ~n·ln(f) probes, safely above the dispatch cost; the
/// soak default (n=60) and every golden-digest workload sit far below
/// and always take the scalar path.
pub const POOL_THRESHOLD: usize = 8192;

/// One staged participant, shipped to workers at load time. Folding
/// the 128-bit ID happens on the worker (in parallel), not at staging.
#[derive(Debug, Clone, Copy)]
struct LoadRec {
    id: TagId,
    base: u64,
}

/// Commands a worker parks on. All payloads are owned or `Copy`; the
/// staging buffer crosses as an `Arc` that the worker drops before it
/// acknowledges, so the main side can reuse the allocation.
enum Cmd {
    /// Copy `data[lo..hi]` into the worker's shard (folding IDs), then
    /// acknowledge with an empty reply.
    Load {
        data: Arc<Vec<LoadRec>>,
        lo: usize,
        hi: usize,
    },
    /// Retire the previous announcement's winners if this shard held
    /// the global minimum, then scan the shard and reply.
    Scan {
        params: ScanParams,
        /// The previous announcement's global minimum (relative slot):
        /// the shard retires its stored members iff its own last
        /// minimum equals it. `None` on the first announcement.
        retire_prev: Option<u64>,
        /// Count probe accounting (observed rounds).
        count: bool,
    },
}

/// One worker's answer to a command. Replies are deliberately
/// anonymous: the min-merge is order-independent and winners stay
/// worker-local, so the main side only needs to count one reply per
/// worker per dispatch.
struct Reply {
    min: Option<u64>,
    stats: ScanStats,
}

/// Worker-side shard state: the owned slices of the active arrays plus
/// the last scan's result, kept so retirement can be folded into the
/// next dispatch (one message round trip per announcement, not two).
#[derive(Default)]
struct Shard {
    folded: Vec<u64>,
    bases: Vec<u64>,
    members: Vec<u32>,
    last_min: Option<u64>,
}

fn worker_loop(rx: &Receiver<Cmd>, tx: &Sender<Reply>) {
    let mut st = Shard::default();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Load { data, lo, hi } => {
                st.folded.clear();
                st.bases.clear();
                st.members.clear();
                st.last_min = None;
                for rec in &data[lo..hi] {
                    st.folded.push(rec.id.fold64());
                    st.bases.push(rec.base);
                }
                // Drop our Arc clone before acknowledging: after the
                // ack the main side may mutate the staging buffer in
                // place (`Arc::make_mut` finds it unique again).
                drop(data);
                if tx
                    .send(Reply {
                        min: None,
                        stats: ScanStats::default(),
                    })
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Scan {
                params,
                retire_prev,
                count,
            } => {
                if let (Some(best), Some(mine)) = (retire_prev, st.last_min) {
                    if mine == best {
                        // This shard held (part of) the previous
                        // minimum: swap-remove its members, descending
                        // so earlier indices stay valid — the same
                        // retirement the scalar engine performs.
                        for &mi in st.members.iter().rev() {
                            st.folded.swap_remove(mi as usize);
                            st.bases.swap_remove(mi as usize);
                        }
                    }
                }
                let job = ScanJob::new(&st.folded, &st.bases, &params);
                let mut stats = ScanStats::default();
                let min = if count {
                    job.scan_range_counting(0, job.len(), &mut st.members, &mut stats)
                } else {
                    job.scan_range_batched(0, job.len(), &mut st.members)
                };
                st.last_min = min;
                if tx.send(Reply { min, stats }).is_err() {
                    return;
                }
            }
        }
    }
}

fn pool_disconnected() -> CoreError {
    CoreError::InvalidParams {
        reason: "round pool worker disconnected".to_string(),
    }
}

/// The persistent sharded round engine. See the module docs for the
/// design; the headline contract is that it implements [`RoundEngine`]
/// **bit-identically** to [`RoundScratch`] at every thread count, so
/// executors, protocols, sessions, and the soak driver can hold one
/// and let `set_threads`-style knobs remain pure implementation
/// detail.
#[derive(Debug)]
pub struct PooledEngine {
    /// Embedded scalar engine: the whole engine when `threads <= 1`,
    /// and the small-round fallback otherwise.
    scalar: RoundScratch,
    workers: Vec<JoinHandle<()>>,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rx: Option<Receiver<Reply>>,
    /// Reusable load staging buffer, shared with workers during a load
    /// and reclaimed (`Arc::make_mut`) once they have acknowledged.
    staging: Arc<Vec<LoadRec>>,
    threshold: usize,
    /// Whether the *current* load went to the workers (vs the scalar
    /// fallback).
    used_pool: bool,
    /// Set when a multi-thread pool fell back to scalar for the
    /// current load: `(actives, threshold)` of the staged population.
    pending_fallback: Option<(u64, u64)>,
    /// Rounds a multi-thread pool ran on the scalar path.
    fallbacks: u64,
    /// A worker vanished mid-protocol (only possible through a panic
    /// or forced teardown); all subsequent pooled runs error rather
    /// than return partial rounds.
    broken: bool,
    uniform_base: Option<u64>,
    bitstring: Bitstring,
    announcements: u64,
}

impl std::fmt::Debug for Cmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cmd::Load { lo, hi, .. } => f
                .debug_struct("Load")
                .field("lo", lo)
                .field("hi", hi)
                .finish(),
            Cmd::Scan { params, .. } => f.debug_struct("Scan").field("params", params).finish(),
        }
    }
}

impl PooledEngine {
    /// An engine with `threads` shards and the default
    /// [`POOL_THRESHOLD`]. `threads <= 1` spawns no workers at all —
    /// the engine is exactly the scalar [`RoundScratch`] — so holding
    /// a `PooledEngine::new(1)` is free of threading side effects and
    /// byte-identical to the pre-pool code paths.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_threshold(threads, POOL_THRESHOLD)
    }

    /// [`PooledEngine::new`] with an explicit scalar-fallback
    /// threshold. Tests use a tiny threshold to force small rounds
    /// through the pool; production code should keep the measured
    /// default.
    #[must_use]
    pub fn with_threshold(threads: usize, threshold: usize) -> Self {
        let mut engine = PooledEngine {
            scalar: RoundScratch::new(),
            workers: Vec::new(),
            cmd_txs: Vec::new(),
            reply_rx: None,
            staging: Arc::new(Vec::new()),
            threshold,
            used_pool: false,
            pending_fallback: None,
            fallbacks: 0,
            broken: false,
            uniform_base: None,
            bitstring: Bitstring::zeros(0),
            announcements: 0,
        };
        if threads > 1 {
            let (reply_tx, reply_rx) = channel::<Reply>();
            for shard in 0..threads {
                let (cmd_tx, cmd_rx) = channel::<Cmd>();
                let tx = reply_tx.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("tagwatch-pool-{shard}"))
                    .spawn(move || worker_loop(&cmd_rx, &tx));
                match spawned {
                    Ok(handle) => {
                        engine.workers.push(handle);
                        engine.cmd_txs.push(cmd_tx);
                    }
                    // Spawn failure (resource exhaustion) degrades the
                    // shard count; results are thread-count-invariant,
                    // so a smaller pool is still exact.
                    Err(_) => break,
                }
            }
            if engine.workers.len() > 1 {
                engine.reply_rx = Some(reply_rx);
            } else {
                // 0 or 1 usable worker: a pool would add dispatch cost
                // for no parallelism. Tear down and stay scalar.
                engine.cmd_txs.clear();
                engine.join_workers();
            }
        }
        engine
    }

    /// Shards this engine scans with (1 = scalar).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len().max(1)
    }

    /// Rounds a multi-thread pool ran on the scalar fallback path
    /// (always 0 for a single-thread engine — there, scalar is the
    /// engine, not a fallback).
    #[must_use]
    pub fn scalar_fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// The scalar-fallback threshold in effect.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn join_workers(&mut self) {
        // Closing the command channels unparks every worker with a
        // recv error; join is then immediate. A worker that panicked
        // already delivered its error through the channel teardown, so
        // the join result carries nothing we still need.
        self.cmd_txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Ships the staged load to the workers as contiguous shards and
    /// waits for every ack.
    fn dispatch_load(&mut self) {
        let n = self.staging.len();
        let t = self.cmd_txs.len();
        let chunk = n.div_ceil(t);
        for (shard, tx) in self.cmd_txs.iter().enumerate() {
            let lo = (shard * chunk).min(n);
            let hi = ((shard + 1) * chunk).min(n);
            if tx
                .send(Cmd::Load {
                    data: Arc::clone(&self.staging),
                    lo,
                    hi,
                })
                .is_err()
            {
                self.broken = true;
            }
        }
        if self.broken {
            return;
        }
        if let Some(rx) = &self.reply_rx {
            for _ in 0..t {
                if rx.recv().is_err() {
                    self.broken = true;
                    return;
                }
            }
        }
    }

    /// The pooled round: the scalar engine's loop with the scan
    /// dispatched to the shards. Retirement of an announcement's
    /// winners rides on the *next* dispatch, so steady state is one
    /// message round trip per announcement.
    fn run_pooled(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: Option<&Obs>,
    ) -> Result<u64, CoreError> {
        if self.broken {
            return Err(pool_disconnected());
        }
        let Some(reply_rx) = &self.reply_rx else {
            return Err(pool_disconnected());
        };
        let count = obs.is_some_and(Obs::enabled);
        let spans_on = obs.is_some_and(Obs::spans_enabled);
        self.bitstring.reset(f.as_usize());
        self.announcements = 0;
        let mut cursor = nonces.cursor();
        let mut walk = SubframeCursor::new(f);
        let mut stats = ScanStats::default();
        let mut retire_prev: Option<u64> = None;
        loop {
            let params = walk.announce(&mut cursor, self.uniform_base)?;
            self.announcements = walk.announcements();
            let probes_before = stats.probes;
            for tx in &self.cmd_txs {
                if tx
                    .send(Cmd::Scan {
                        params,
                        retire_prev,
                        count,
                    })
                    .is_err()
                {
                    self.broken = true;
                    return Err(pool_disconnected());
                }
            }
            let mut best: Option<u64> = None;
            for _ in 0..self.cmd_txs.len() {
                let Ok(reply) = reply_rx.recv() else {
                    self.broken = true;
                    return Err(pool_disconnected());
                };
                stats.merge(reply.stats);
                best = match (best, reply.min) {
                    (Some(b), Some(m)) => Some(b.min(m)),
                    (b, m) => b.or(m),
                };
            }
            if spans_on {
                if let Some(obs) = obs {
                    // Identical phase attribution to the scalar
                    // engine's observed path: slots telescope to the
                    // frame size, probes are the merged (shard-order-
                    // independent) per-announcement delta.
                    let slots = best.map_or_else(|| params.frame.divisor(), |r| r + 1);
                    let probes = stats.probes - probes_before;
                    obs.span_phase(tagwatch_obs::Phase::SubFrameSetup, 0, 0);
                    let phase = if self.announcements == 1 {
                        tagwatch_obs::Phase::MinScan
                    } else {
                        tagwatch_obs::Phase::ReSeed
                    };
                    obs.span_phase(phase, slots, probes);
                }
            }
            let Some(rel) = best else {
                // Silent announcement: the rest of the frame is
                // silence and the round ends.
                break;
            };
            let global = walk.record_reply(rel);
            self.bitstring.set(global as usize, true)?;
            retire_prev = Some(rel);
            if walk.is_done() {
                break;
            }
        }
        if count {
            if let Some(obs) = obs {
                obs.add(obs.m.probes_total, stats.probes);
                obs.add(obs.m.probes_filtered, stats.filtered);
            }
        }
        Ok(self.announcements)
    }

    fn run_inner(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: Option<&Obs>,
    ) -> Result<u64, CoreError> {
        if self.used_pool {
            return self.run_pooled(f, nonces, obs);
        }
        // Fallback rounds count on the engine but deliberately emit
        // nothing to `obs`: an exact engine must be observably
        // indistinguishable from the scalar engine at every thread
        // count, or the committed golden digests would fork on the
        // operator's `--threads` choice. Flight-ring fallback events
        // live in the reference scanner's observed entry point
        // (`crate::scan::run_round_parallel_observed`), outside every
        // digested path.
        if self.pending_fallback.is_some() {
            self.fallbacks += 1;
        }
        match obs {
            Some(obs) => self.scalar.run_observed(f, nonces, obs),
            None => RoundScratch::run(&mut self.scalar, f, nonces),
        }
    }
}

impl Drop for PooledEngine {
    fn drop(&mut self) {
        self.join_workers();
    }
}

impl RoundEngine for PooledEngine {
    fn load<I: IntoIterator<Item = (TagId, Counter, bool)>>(&mut self, parts: I) {
        if self.cmd_txs.is_empty() {
            // Single-thread engine: no staging detour, the scalar
            // scratch loads exactly as it always has.
            RoundEngine::load(&mut self.scalar, parts);
            self.used_pool = false;
            self.pending_fallback = None;
            return;
        }
        // Stage actives once (mute tags drop here, as in the scalar
        // load), tracking the uniform-counter collapse the same way.
        let buf = Arc::make_mut(&mut self.staging);
        buf.clear();
        let mut uniform = true;
        let mut first_base: Option<u64> = None;
        for (id, ct, mute) in parts {
            if mute {
                continue;
            }
            let base = ct.get();
            match first_base {
                None => first_base = Some(base),
                Some(b) if b != base => uniform = false,
                Some(_) => {}
            }
            buf.push(LoadRec { id, base });
        }
        self.uniform_base = if uniform { first_base } else { None };
        if buf.len() < self.threshold {
            // Below the dispatch break-even: replay the staging into
            // the scalar engine. Original-order indices differ from a
            // direct load (mute tags dropped at staging), but no
            // engine observable depends on them.
            let scalar = &mut self.scalar;
            RoundEngine::load(
                scalar,
                self.staging
                    .iter()
                    .map(|r| (r.id, Counter::new(r.base), false)),
            );
            self.used_pool = false;
            self.pending_fallback = Some((self.staging.len() as u64, self.threshold as u64));
            return;
        }
        self.used_pool = true;
        self.pending_fallback = None;
        self.dispatch_load();
    }

    fn run(&mut self, f: FrameSize, nonces: &NonceSequence) -> Result<u64, CoreError> {
        self.run_inner(f, nonces, None)
    }

    fn run_observed(
        &mut self,
        f: FrameSize,
        nonces: &NonceSequence,
        obs: &Obs,
    ) -> Result<u64, CoreError> {
        self.run_inner(f, nonces, Some(obs))
    }

    fn bitstring(&self) -> &Bitstring {
        if self.used_pool {
            &self.bitstring
        } else {
            RoundScratch::bitstring(&self.scalar)
        }
    }

    fn take_bitstring(&mut self) -> Bitstring {
        if self.used_pool {
            std::mem::replace(&mut self.bitstring, Bitstring::zeros(0))
        } else {
            RoundScratch::take_bitstring(&mut self.scalar)
        }
    }

    fn announcements(&self) -> u64 {
        if self.used_pool {
            self.announcements
        } else {
            RoundScratch::announcements(&self.scalar)
        }
    }

    fn load_population(&mut self, population: &TagPopulation) {
        self.load(
            population
                .iter()
                .map(|t| (t.id(), t.counter(), t.is_detuned())),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::worker_threads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::utrp::{UtrpChallenge, UtrpParticipant};
    use tagwatch_sim::TimingModel;

    fn challenge(f: u64, seed: u64) -> UtrpChallenge {
        let mut rng = StdRng::seed_from_u64(seed);
        UtrpChallenge::generate(FrameSize::new(f).unwrap(), &TimingModel::gen2(), &mut rng)
    }

    fn parts(n: u64) -> Vec<UtrpParticipant> {
        (1..=n)
            .map(|i| {
                let mut p = UtrpParticipant::new(TagId::from(i), Counter::new(i % 6));
                p.mute = i % 17 == 0;
                p
            })
            .collect()
    }

    fn scalar_round(population: &[UtrpParticipant], ch: &UtrpChallenge) -> (Bitstring, u64) {
        let mut scratch = RoundScratch::new();
        scratch.load_participants(population);
        let ann = scratch.run(ch.frame_size(), ch.nonces()).unwrap();
        (scratch.take_bitstring(), ann)
    }

    #[test]
    fn pooled_round_is_bit_identical_across_thread_counts() {
        // Small threshold forces the pool to engage; mid-round
        // retirement and re-seed scans happen on every announcement.
        for (n, f, seed) in [(700u64, 96u64, 1u64), (1500, 256, 2), (2000, 128, 3)] {
            let population = parts(n);
            let ch = challenge(f, seed);
            let (seq_bs, seq_ann) = scalar_round(&population, &ch);
            for threads in [1usize, 2, 3, worker_threads()] {
                let mut engine = PooledEngine::with_threshold(threads, 64);
                engine.load_participants(&population);
                let ann = engine.run(ch.frame_size(), ch.nonces()).unwrap();
                assert_eq!(*engine.bitstring(), seq_bs, "threads={threads} n={n}");
                assert_eq!(ann, seq_ann, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn pooled_engine_reuses_across_rounds_and_loads() {
        // The same engine must serve many rounds (session lifetime)
        // with per-round loads, mixing pool and fallback rounds.
        let mut engine = PooledEngine::with_threshold(3, 256);
        for seed in 0..6u64 {
            let n = if seed % 2 == 0 { 600 } else { 40 }; // pool / fallback
            let population = parts(n);
            let ch = challenge(128, 100 + seed);
            let (seq_bs, seq_ann) = scalar_round(&population, &ch);
            engine.load_participants(&population);
            let ann = engine.run(ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*engine.bitstring(), seq_bs, "seed={seed}");
            assert_eq!(ann, seq_ann, "seed={seed}");
        }
        assert_eq!(engine.scalar_fallbacks(), 3);
    }

    #[test]
    fn observed_pooled_round_keeps_probes_thread_invariant() {
        let population = parts(900);
        let ch = challenge(96, 7);

        let seq_obs = Obs::new();
        let mut seq = RoundScratch::new();
        seq.load_participants(&population);
        let seq_ann = seq
            .run_observed(ch.frame_size(), ch.nonces(), &seq_obs)
            .unwrap();
        let seq_probes = seq_obs.counter(seq_obs.m.probes_total);
        assert!(seq_probes > 0);

        for threads in [2usize, 3, worker_threads().max(2)] {
            let obs = Obs::new();
            let mut engine = PooledEngine::with_threshold(threads, 64);
            engine.load_participants(&population);
            let ann = engine
                .run_observed(ch.frame_size(), ch.nonces(), &obs)
                .unwrap();
            assert_eq!(ann, seq_ann, "threads={threads}");
            assert_eq!(*engine.bitstring(), *seq.bitstring(), "threads={threads}");
            // Probes are thread-invariant; filtered is per-shard
            // warm-up diagnostics (see module docs) and is not.
            assert_eq!(
                obs.counter(obs.m.probes_total),
                seq_probes,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn fallback_rounds_count_without_touching_the_flight_ring() {
        let population = parts(30);
        let ch = challenge(64, 9);
        let obs = Obs::new();
        let mut engine = PooledEngine::with_threshold(2, 1 << 20);
        engine.load_participants(&population);
        engine
            .run_observed(ch.frame_size(), ch.nonces(), &obs)
            .unwrap();
        assert_eq!(engine.scalar_fallbacks(), 1);
        // The fallback must NOT reach `obs`: golden digests hold at
        // every thread count precisely because the engine is
        // observably indistinguishable from the scalar path.
        assert!(
            !obs.flight_jsonl().contains("scalar_fallback"),
            "fallback leaked into the flight ring"
        );

        // A single-thread engine is scalar *by configuration*: no
        // fallback accounting either.
        let single_obs = Obs::new();
        let mut single = PooledEngine::new(1);
        single.load_participants(&population);
        single
            .run_observed(ch.frame_size(), ch.nonces(), &single_obs)
            .unwrap();
        assert_eq!(single.scalar_fallbacks(), 0);
        assert!(!single_obs.flight_jsonl().contains("scalar_fallback"));
    }

    #[test]
    fn empty_and_all_mute_loads_fall_back_and_agree() {
        let ch = challenge(16, 5);
        let mut engine = PooledEngine::with_threshold(2, 8);
        engine.load_pairs(std::iter::empty());
        assert_eq!(engine.run(ch.frame_size(), ch.nonces()).unwrap(), 1);
        assert_eq!(engine.bitstring().count_ones(), 0);

        let mut muted = parts(5);
        for p in &mut muted {
            p.mute = true;
        }
        engine.load_participants(&muted);
        assert_eq!(engine.run(ch.frame_size(), ch.nonces()).unwrap(), 1);
        assert_eq!(engine.bitstring().count_ones(), 0);
    }

    #[test]
    fn uniform_counter_collapse_is_detected_in_staging() {
        // All-equal counters must take the collapsed-key path through
        // the pool and still agree with the scalar engine; one bumped
        // counter must take the general path.
        let ch = challenge(128, 13);
        for bump in [0u64, 1] {
            let mut population: Vec<UtrpParticipant> = (1..=500u64)
                .map(|i| UtrpParticipant::new(TagId::from(i), Counter::new(9)))
                .collect();
            population[123].counter = Counter::new(9 + bump);
            let (seq_bs, seq_ann) = scalar_round(&population, &ch);
            let mut engine = PooledEngine::with_threshold(3, 32);
            engine.load_participants(&population);
            let ann = engine.run(ch.frame_size(), ch.nonces()).unwrap();
            assert_eq!(*engine.bitstring(), seq_bs, "bump={bump}");
            assert_eq!(ann, seq_ann, "bump={bump}");
        }
    }

    #[test]
    fn take_bitstring_hands_out_the_pooled_result() {
        let population = parts(400);
        let ch = challenge(64, 3);
        let (seq_bs, _) = scalar_round(&population, &ch);
        let mut engine = PooledEngine::with_threshold(2, 16);
        engine.load_participants(&population);
        engine.run(ch.frame_size(), ch.nonces()).unwrap();
        assert_eq!(engine.take_bitstring(), seq_bs);
        assert_eq!(engine.bitstring().len(), 0, "taken bitstring leaves empty");
    }
}
