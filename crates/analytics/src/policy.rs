//! Declarative per-site monitoring policy documents.
//!
//! The paper's protocols say *when a tag looks missing*; everything
//! operational — alarm confirmation, desync strikes, quarantine, audit
//! budgets — used to live in a hardcoded session-policy ladder.
//! This module replaces that with a versioned, deterministic, text
//! document (`tagwatch-policy v1`, the same hand-rolled sectioned
//! format discipline as `tagwatch-checkpoint v1`) parsed into a
//! validated [`Policy`] that *compiles down to* the existing ladder
//! semantics: [`MonitoringSession`](crate::MonitoringSession) is now a
//! policy **interpreter**, and its decision points are recorded as
//! declarative [`PolicyAction`]s.
//!
//! ## Document format
//!
//! ```text
//! tagwatch-policy v1
//! @section site
//! name default
//! @section protocol
//! ticks trp
//! @section thresholds
//! alarms_to_escalate 2
//! max_desync_retries 3
//! desyncs_to_quarantine 2
//! @section desync
//! window 96
//! @section audit
//! budget unlimited
//! window 100
//! @section escalation
//! action identify
//! @section identify
//! frame_factor 2
//! max_rounds 64
//! ```
//!
//! Every section and key is required (a v1 document is always
//! complete, so two readers can never disagree on an implied default);
//! blank lines and `#`-comment lines are ignored on parse and never
//! emitted by [`Policy::to_text`]. `desyncs_to_quarantine` accepts
//! `off` (quarantine disabled) and `budget` accepts `unlimited`.
//!
//! ## Determinism contract
//!
//! [`Policy::default`] carries the legacy ladder defaults
//! and its document reproduces the committed soak/obs golden digests
//! byte-for-byte. `Policy::parse(p.to_text()) == p` for every valid
//! policy, and the flat key–value codec ([`Policy::to_flat_lines`] /
//! [`Policy::from_flat_lines`]) embeds losslessly into checkpoint
//! sections and WAL config records, so `recover` replays a crashed run
//! under the exact policy it started with.

use std::fmt;

use tagwatch_core::identify::IdentifyConfig;

use crate::session::TickProtocol;

/// Header line of every policy document.
pub const POLICY_HEADER: &str = "tagwatch-policy v1";

/// Desync window carried by the default policy: the soak harness's
/// documented server window (`SoakConfig::default().desync_window`).
const DEFAULT_DESYNC_WINDOW: u64 = 96;

/// Audit window carried by the default policy, matching the soak
/// report's `max_audits_in_window(100)` statistic.
const DEFAULT_AUDIT_WINDOW: u64 = 100;

/// What the session does when the alarm ladder tops out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EscalateAction {
    /// Run the paper's iterative identification protocol and name the
    /// missing tags (the classic ladder behavior).
    Identify,
    /// Record the escalation for an operator without spending
    /// identification rounds — for sites that resolve alarms by
    /// physical sweep. The escalation event carries empty verdicts and
    /// zero slots; no identification RNG draws are consumed.
    Report,
}

impl EscalateAction {
    /// The document keyword for this action.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            EscalateAction::Identify => "identify",
            EscalateAction::Report => "report",
        }
    }

    fn from_keyword(value: &str) -> Option<Self> {
        match value {
            "identify" => Some(EscalateAction::Identify),
            "report" => Some(EscalateAction::Report),
            _ => None,
        }
    }
}

fn protocol_keyword(protocol: TickProtocol) -> &'static str {
    match protocol {
        TickProtocol::Trp => "trp",
        TickProtocol::Utrp => "utrp",
    }
}

fn protocol_from_keyword(value: &str) -> Option<TickProtocol> {
    match value {
        "trp" => Some(TickProtocol::Trp),
        "utrp" => Some(TickProtocol::Utrp),
        _ => None,
    }
}

/// A validated, per-site monitoring policy: the declarative form the
/// session's escalation ladder interprets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Site name (non-empty, no whitespace, no `@`): the label audit
    /// trails and `inspect` output attribute decisions to.
    pub site: String,
    /// Protocol for routine ticks.
    pub protocol: TickProtocol,
    /// Consecutive alarming ticks before escalating.
    pub alarms_to_escalate: u32,
    /// In-tick desync re-challenge budget (fresh nonces per retry).
    pub max_desync_retries: u32,
    /// Desync strikes before a suspect tag is quarantined for physical
    /// audit; `None` disables quarantine entirely.
    pub desyncs_to_quarantine: Option<u32>,
    /// Identification configuration used by
    /// [`EscalateAction::Identify`].
    pub identify: IdentifyConfig,
    /// Server-side desync diagnosis window (counter steps searched
    /// when an alarming UTRP round is checked for desynchronization).
    /// Consumed where the policy constructs a server (soak, CLI); a
    /// session over a pre-built server keeps that server's window.
    pub desync_window: u64,
    /// Physical audits permitted per trailing [`audit_window`] ticks;
    /// `None` is unlimited. Drivers that exceed the budget raise a
    /// policy alert (they never silently skip the audit).
    ///
    /// [`audit_window`]: Policy::audit_window
    pub audit_budget: Option<u32>,
    /// Length in ticks of the trailing window the audit budget is
    /// counted over.
    pub audit_window: u64,
    /// What escalation does when the ladder tops out.
    pub escalate_action: EscalateAction,
}

impl Default for Policy {
    /// The documented defaults: site `default`, TRP ticks, escalate
    /// after 2 consecutive alarms (by identification), up to 3
    /// in-tick desync retries, quarantine on the 2nd strike, desync
    /// window 96, unlimited audits counted over 100-tick windows.
    fn default() -> Self {
        Policy {
            site: "default".to_string(),
            protocol: TickProtocol::Trp,
            alarms_to_escalate: 2,
            max_desync_retries: 3,
            desyncs_to_quarantine: Some(2),
            identify: IdentifyConfig::default(),
            desync_window: DEFAULT_DESYNC_WINDOW,
            audit_budget: None,
            audit_window: DEFAULT_AUDIT_WINDOW,
            escalate_action: EscalateAction::Identify,
        }
    }
}

/// One declarative decision the policy interpreter took. The session
/// records these on its policy trace as it climbs the ladder; on the
/// flight recorder the same decision points surface as the existing
/// `ObsEvent::Resynced` / `Quarantined` / `Escalated` /
/// `AuditCompleted` events, so the default instrumentation stream is
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// A desynced round was recovered in-tick and re-challenged with
    /// fresh nonces (the retry budget had room).
    RetryResync {
        /// 1-based resync attempt within the tick.
        attempt: u32,
        /// Suspects carried by the accepted hypothesis.
        suspects: usize,
    },
    /// Suspect tags crossed the strike threshold and were quarantined.
    Quarantine {
        /// Tags quarantined by this decision.
        tags: usize,
        /// The strike threshold that was crossed.
        threshold: u32,
    },
    /// Consecutive alarms crossed the threshold and the configured
    /// escalation action ran.
    Escalate {
        /// The action the policy prescribed.
        action: EscalateAction,
        /// Consecutive alarms that triggered the escalation.
        after_alarms: u32,
    },
    /// Audited tags were released back to service.
    ReleaseAudited {
        /// Tags released by this audit.
        released: usize,
    },
}

/// A rejected policy document or degenerate policy, rendered as
/// rustc-style diagnostics (one `error:` block per problem, with
/// `--> origin:line` arrows where the offending line is known and
/// `= help:` notes where a fix is obvious).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// The rendered diagnostics.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PolicyError {}

/// One diagnostic under construction.
struct Diagnostic {
    message: String,
    location: Option<(String, usize)>,
    help: Option<String>,
}

impl Diagnostic {
    fn new(message: impl Into<String>) -> Self {
        Diagnostic {
            message: message.into(),
            location: None,
            help: None,
        }
    }

    fn at(mut self, origin: &str, line: usize) -> Self {
        self.location = Some((origin.to_string(), line));
        self
    }

    fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    fn render(&self, out: &mut String) {
        out.push_str("error: ");
        out.push_str(&self.message);
        if let Some((origin, line)) = &self.location {
            out.push_str(&format!("\n  --> {origin}:{line}"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n  = help: {help}"));
        }
    }
}

fn render_all(diags: Vec<Diagnostic>) -> PolicyError {
    let mut message = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            message.push_str("\n\n");
        }
        d.render(&mut message);
    }
    PolicyError { message }
}

/// The sections a v1 document must carry, in canonical order, with
/// their permitted keys.
const SECTIONS: &[(&str, &[&str])] = &[
    ("site", &["name"]),
    ("protocol", &["ticks"]),
    (
        "thresholds",
        &[
            "alarms_to_escalate",
            "max_desync_retries",
            "desyncs_to_quarantine",
        ],
    ),
    ("desync", &["window"]),
    ("audit", &["budget", "window"]),
    ("escalation", &["action"]),
    ("identify", &["frame_factor", "max_rounds"]),
];

fn known_section(name: &str) -> Option<&'static [&'static str]> {
    SECTIONS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, keys)| *keys)
}

/// One parsed `key value` line with provenance for diagnostics.
struct Entry {
    section: &'static str,
    key: &'static str,
    value: String,
    line: usize,
}

/// Raw first-pass parse: header, section structure, key/value shape.
/// Returns entries on success; structural problems become diagnostics.
fn parse_entries(text: &str, origin: &str) -> Result<Vec<Entry>, PolicyError> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut current: Option<&'static str> = None;
    let mut seen_sections: Vec<&'static str> = Vec::new();
    let mut seen_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !seen_header {
            if line != POLICY_HEADER {
                return Err(render_all(vec![Diagnostic::new(format!(
                    "expected `{POLICY_HEADER}` header, found `{line}`"
                ))
                .at(origin, lineno)]));
            }
            seen_header = true;
            continue;
        }
        if let Some(name) = line.strip_prefix("@section ") {
            match known_section(name) {
                Some(_) => {
                    // Borrow the static name so entries stay allocation-light.
                    current = SECTIONS.iter().map(|(n, _)| *n).find(|n| *n == name);
                    if let Some(section) = current {
                        if seen_sections.contains(&section) {
                            diags.push(
                                Diagnostic::new(format!("duplicate section `@section {name}`"))
                                    .at(origin, lineno),
                            );
                        } else {
                            seen_sections.push(section);
                        }
                    }
                }
                None => {
                    diags.push(
                        Diagnostic::new(format!("unknown section `@section {name}`"))
                            .at(origin, lineno)
                            .help(format!(
                                "v1 sections are: {}",
                                SECTIONS
                                    .iter()
                                    .map(|(n, _)| *n)
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )),
                    );
                    current = None;
                }
            }
            continue;
        }
        let Some(section) = current else {
            diags.push(
                Diagnostic::new(format!("line outside any section: `{line}`")).at(origin, lineno),
            );
            continue;
        };
        let Some((key, value)) = line.split_once(' ') else {
            diags.push(
                Diagnostic::new(format!("expected `key value`, found `{line}`")).at(origin, lineno),
            );
            continue;
        };
        let keys = known_section(section).unwrap_or(&[]);
        let Some(key) = keys.iter().copied().find(|k| *k == key) else {
            diags.push(
                Diagnostic::new(format!("unknown key `{key}` in `@section {section}`"))
                    .at(origin, lineno)
                    .help(format!(
                        "`@section {section}` keys are: {}",
                        keys.join(", ")
                    )),
            );
            continue;
        };
        if entries.iter().any(|e| e.section == section && e.key == key) {
            diags.push(
                Diagnostic::new(format!("duplicate key `{key}` in `@section {section}`"))
                    .at(origin, lineno),
            );
            continue;
        }
        entries.push(Entry {
            section,
            key,
            value: value.trim().to_string(),
            line: lineno,
        });
    }
    if !seen_header {
        diags.push(Diagnostic::new(format!(
            "empty document: expected `{POLICY_HEADER}` header"
        )));
    }
    if diags.is_empty() {
        Ok(entries)
    } else {
        Err(render_all(diags))
    }
}

/// Second-pass field extraction over parsed entries.
struct Fields<'a> {
    origin: &'a str,
    entries: Vec<Entry>,
    diags: Vec<Diagnostic>,
}

impl<'a> Fields<'a> {
    fn get(&mut self, section: &str, key: &str) -> Option<(String, usize)> {
        match self
            .entries
            .iter()
            .find(|e| e.section == section && e.key == key)
        {
            Some(e) => Some((e.value.clone(), e.line)),
            None => {
                self.diags.push(Diagnostic::new(format!(
                    "missing `{key}` in `@section {section}`"
                )));
                None
            }
        }
    }

    fn number<T: std::str::FromStr>(&mut self, section: &str, key: &str) -> Option<(T, usize)> {
        let (value, line) = self.get(section, key)?;
        match value.parse::<T>() {
            Ok(n) => Some((n, line)),
            Err(_) => {
                self.diags.push(
                    Diagnostic::new(format!("`{key}` wants a number, found `{value}`"))
                        .at(self.origin, line),
                );
                None
            }
        }
    }

    /// A number or a sentinel keyword mapping to `None`.
    fn number_or<T: std::str::FromStr>(
        &mut self,
        section: &str,
        key: &str,
        sentinel: &str,
    ) -> Option<(Option<T>, usize)> {
        let (value, line) = self.get(section, key)?;
        if value == sentinel {
            return Some((None, line));
        }
        match value.parse::<T>() {
            Ok(n) => Some((Some(n), line)),
            Err(_) => {
                self.diags.push(
                    Diagnostic::new(format!(
                        "`{key}` wants a number or `{sentinel}`, found `{value}`"
                    ))
                    .at(self.origin, line),
                );
                None
            }
        }
    }
}

impl Policy {
    /// Parses a `tagwatch-policy v1` document and validates it.
    /// Equivalent to [`Policy::parse_named`] with origin `<policy>`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] diagnostics for structural problems
    /// (bad header, unknown sections/keys, missing fields, malformed
    /// values) and for degenerate-but-parseable policies (see
    /// [`Policy::validate`]).
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        Policy::parse_named(text, "<policy>")
    }

    /// [`Policy::parse`] with an origin (normally the file path) that
    /// diagnostics point their `-->` arrows at.
    ///
    /// # Errors
    ///
    /// See [`Policy::parse`].
    pub fn parse_named(text: &str, origin: &str) -> Result<Policy, PolicyError> {
        let entries = parse_entries(text, origin)?;
        let mut f = Fields {
            origin,
            entries,
            diags: Vec::new(),
        };

        let site = f.get("site", "name");
        let protocol = match f.get("protocol", "ticks") {
            Some((value, line)) => match protocol_from_keyword(&value) {
                Some(p) => Some((p, line)),
                None => {
                    f.diags.push(
                        Diagnostic::new(format!("unknown protocol `{value}`"))
                            .at(origin, line)
                            .help("`ticks` is `trp` or `utrp`"),
                    );
                    None
                }
            },
            None => None,
        };
        let alarms = f.number::<u32>("thresholds", "alarms_to_escalate");
        let retries = f.number::<u32>("thresholds", "max_desync_retries");
        let quarantine = f.number_or::<u32>("thresholds", "desyncs_to_quarantine", "off");
        let desync_window = f.number::<u64>("desync", "window");
        let budget = f.number_or::<u32>("audit", "budget", "unlimited");
        let audit_window = f.number::<u64>("audit", "window");
        let action = match f.get("escalation", "action") {
            Some((value, line)) => match EscalateAction::from_keyword(&value) {
                Some(a) => Some((a, line)),
                None => {
                    f.diags.push(
                        Diagnostic::new(format!("unknown escalation action `{value}`"))
                            .at(origin, line)
                            .help("`action` is `identify` or `report`"),
                    );
                    None
                }
            },
            None => None,
        };
        let frame_factor = f.number::<u64>("identify", "frame_factor");
        let max_rounds = f.number::<u32>("identify", "max_rounds");

        let mut diags = f.diags;
        let (
            Some(site),
            Some(protocol),
            Some(alarms),
            Some(retries),
            Some(quarantine),
            Some(desync_window),
            Some(budget),
            Some(audit_window),
            Some(action),
            Some(frame_factor),
            Some(max_rounds),
        ) = (
            site,
            protocol,
            alarms,
            retries,
            quarantine,
            desync_window,
            budget,
            audit_window,
            action,
            frame_factor,
            max_rounds,
        )
        else {
            return Err(render_all(diags));
        };
        if !diags.is_empty() {
            return Err(render_all(diags));
        }

        let policy = Policy {
            site: site.0,
            protocol: protocol.0,
            alarms_to_escalate: alarms.0,
            max_desync_retries: retries.0,
            desyncs_to_quarantine: quarantine.0,
            identify: IdentifyConfig {
                frame_factor: frame_factor.0,
                max_rounds: max_rounds.0,
            },
            desync_window: desync_window.0,
            audit_budget: budget.0,
            audit_window: audit_window.0,
            escalate_action: action.0,
        };
        policy.collect_validation(
            origin,
            &[
                ("site", site.1),
                ("max_desync_retries", retries.1),
                ("desyncs_to_quarantine", quarantine.1),
                ("desync_window", desync_window.1),
                ("audit_budget", budget.1),
                ("alarms_to_escalate", alarms.1),
                ("frame_factor", frame_factor.1),
            ],
            &mut diags,
        );
        if diags.is_empty() {
            Ok(policy)
        } else {
            Err(render_all(diags))
        }
    }

    /// Checks a policy for degenerate configurations that would
    /// silently run an un-escalatable or un-recoverable session.
    /// [`Policy::parse`] runs this automatically with line-accurate
    /// diagnostics; call it directly on programmatically built
    /// policies.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] diagnostics when the policy is
    /// degenerate: a zero in-tick retry budget with a zero desync
    /// window, an audit budget of 0 with quarantine enabled, a zero
    /// alarm threshold, an invalid site name, or a zero identification
    /// budget with [`EscalateAction::Identify`].
    pub fn validate(&self) -> Result<(), PolicyError> {
        let mut diags = Vec::new();
        self.collect_validation("<policy>", &[], &mut diags);
        if diags.is_empty() {
            Ok(())
        } else {
            Err(render_all(diags))
        }
    }

    /// Shared semantic checks; `lines` maps field names to document
    /// lines when the policy came from a parse.
    fn collect_validation(
        &self,
        origin: &str,
        lines: &[(&str, usize)],
        diags: &mut Vec<Diagnostic>,
    ) {
        let at = |d: Diagnostic, field: &str| -> Diagnostic {
            match lines.iter().find(|(f, _)| *f == field) {
                Some((_, line)) => d.at(origin, *line),
                None => d,
            }
        };
        if self.site.is_empty()
            || self.site.contains(char::is_whitespace)
            || self.site.contains('@')
        {
            diags.push(at(
                Diagnostic::new(format!("invalid site name `{}`", self.site))
                    .help("site names are non-empty and contain no whitespace or `@`"),
                "site",
            ));
        }
        if self.alarms_to_escalate == 0 {
            diags.push(at(
                Diagnostic::new("`alarms_to_escalate 0` escalates on every tick, intact or not")
                    .help("set it to at least 1; 2 rides out a single transiently blocked round"),
                "alarms_to_escalate",
            ));
        }
        if self.max_desync_retries == 0 && self.desync_window == 0 {
            diags.push(at(
                Diagnostic::new(
                    "zero in-tick retry budget with a zero desync window leaves a desynced \
                     site no recovery path",
                )
                .help(
                    "raise `max_desync_retries` so desyncs are re-challenged in-tick, or give \
                     the server a nonzero `window` so they are diagnosed at all",
                ),
                "max_desync_retries",
            ));
        }
        if self.audit_budget == Some(0) && self.desyncs_to_quarantine.is_some() {
            diags.push(at(
                Diagnostic::new("audit budget of 0 with quarantine enabled").help(
                    "quarantined tags only return to service through a physical audit; raise \
                     `budget` or disable quarantine with `desyncs_to_quarantine off`",
                ),
                "audit_budget",
            ));
        }
        if self.escalate_action == EscalateAction::Identify
            && (self.identify.frame_factor == 0 || self.identify.max_rounds == 0)
        {
            diags.push(at(
                Diagnostic::new("`action identify` with a zero identification budget").help(
                    "set `frame_factor` and `max_rounds` to at least 1, or use `action report`",
                ),
                "frame_factor",
            ));
        }
        if self.desyncs_to_quarantine == Some(0) {
            diags.push(at(
                Diagnostic::new("`desyncs_to_quarantine 0` is ambiguous")
                    .help("use `off` to disable quarantine, or a threshold of at least 1"),
                "desyncs_to_quarantine",
            ));
        }
    }

    /// Serializes to the canonical v1 document. Round-trip exact:
    /// `Policy::parse(p.to_text()) == p` for every valid policy.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(POLICY_HEADER);
        out.push('\n');
        out.push_str("@section site\n");
        out.push_str(&format!("name {}\n", self.site));
        out.push_str("@section protocol\n");
        out.push_str(&format!("ticks {}\n", protocol_keyword(self.protocol)));
        out.push_str("@section thresholds\n");
        out.push_str(&format!("alarms_to_escalate {}\n", self.alarms_to_escalate));
        out.push_str(&format!("max_desync_retries {}\n", self.max_desync_retries));
        match self.desyncs_to_quarantine {
            Some(n) => out.push_str(&format!("desyncs_to_quarantine {n}\n")),
            None => out.push_str("desyncs_to_quarantine off\n"),
        }
        out.push_str("@section desync\n");
        out.push_str(&format!("window {}\n", self.desync_window));
        out.push_str("@section audit\n");
        match self.audit_budget {
            Some(n) => out.push_str(&format!("budget {n}\n")),
            None => out.push_str("budget unlimited\n"),
        }
        out.push_str(&format!("window {}\n", self.audit_window));
        out.push_str("@section escalation\n");
        out.push_str(&format!("action {}\n", self.escalate_action.keyword()));
        out.push_str("@section identify\n");
        out.push_str(&format!("frame_factor {}\n", self.identify.frame_factor));
        out.push_str(&format!("max_rounds {}\n", self.identify.max_rounds));
        out
    }

    /// Serializes to flat `key value` lines — no `@` markers, no
    /// newlines — safe to embed as one checkpoint section or as
    /// prefixed WAL config lines. Inverse of
    /// [`Policy::from_flat_lines`].
    #[must_use]
    pub fn to_flat_lines(&self) -> Vec<String> {
        vec![
            format!("site {}", self.site),
            format!("protocol {}", protocol_keyword(self.protocol)),
            format!("alarms_to_escalate {}", self.alarms_to_escalate),
            format!("max_desync_retries {}", self.max_desync_retries),
            match self.desyncs_to_quarantine {
                Some(n) => format!("desyncs_to_quarantine {n}"),
                None => "desyncs_to_quarantine off".to_string(),
            },
            format!("desync_window {}", self.desync_window),
            match self.audit_budget {
                Some(n) => format!("audit_budget {n}"),
                None => "audit_budget unlimited".to_string(),
            },
            format!("audit_window {}", self.audit_window),
            format!("escalate_action {}", self.escalate_action.keyword()),
            format!("identify_frame_factor {}", self.identify.frame_factor),
            format!("identify_max_rounds {}", self.identify.max_rounds),
        ]
    }

    /// Rebuilds a policy from [`Policy::to_flat_lines`] output. Every
    /// key is required exactly once; the rebuilt policy is validated.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] on unknown/duplicate/missing keys,
    /// malformed values, or a degenerate policy.
    pub fn from_flat_lines<I, S>(lines: I) -> Result<Policy, PolicyError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut pairs: Vec<(String, String)> = Vec::new();
        let mut diags = Vec::new();
        for line in lines {
            let line = line.as_ref();
            let Some((key, value)) = line.split_once(' ') else {
                diags.push(Diagnostic::new(format!(
                    "expected `key value` policy line, found `{line}`"
                )));
                continue;
            };
            if pairs.iter().any(|(k, _)| k == key) {
                diags.push(Diagnostic::new(format!("duplicate policy key `{key}`")));
                continue;
            }
            pairs.push((key.to_string(), value.trim().to_string()));
        }
        if !diags.is_empty() {
            return Err(render_all(diags));
        }
        // Reuse the document parser by lowering the flat pairs into a
        // canonical document: one decode path, one set of diagnostics.
        let mut by_section: Vec<(&str, Vec<(String, String)>)> = SECTIONS
            .iter()
            .map(|(name, _)| (*name, Vec::new()))
            .collect();
        for (key, value) in pairs {
            let (section, doc_key) = match key.as_str() {
                "site" => ("site", "name"),
                "protocol" => ("protocol", "ticks"),
                "alarms_to_escalate" => ("thresholds", "alarms_to_escalate"),
                "max_desync_retries" => ("thresholds", "max_desync_retries"),
                "desyncs_to_quarantine" => ("thresholds", "desyncs_to_quarantine"),
                "desync_window" => ("desync", "window"),
                "audit_budget" => ("audit", "budget"),
                "audit_window" => ("audit", "window"),
                "escalate_action" => ("escalation", "action"),
                "identify_frame_factor" => ("identify", "frame_factor"),
                "identify_max_rounds" => ("identify", "max_rounds"),
                other => {
                    return Err(render_all(vec![Diagnostic::new(format!(
                        "unknown policy key `{other}`"
                    ))]));
                }
            };
            if let Some((_, lines)) = by_section.iter_mut().find(|(n, _)| *n == section) {
                lines.push((doc_key.to_string(), value));
            }
        }
        let mut doc = String::new();
        doc.push_str(POLICY_HEADER);
        doc.push('\n');
        for (section, lines) in by_section {
            doc.push_str(&format!("@section {section}\n"));
            for (key, value) in lines {
                doc.push_str(&format!("{key} {value}\n"));
            }
        }
        Policy::parse_named(&doc, "<flat policy lines>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_mirrors_the_legacy_defaults() {
        let p = Policy::default();
        assert_eq!(p.site, "default");
        assert_eq!(p.protocol, TickProtocol::Trp);
        assert_eq!(p.alarms_to_escalate, 2);
        assert_eq!(p.max_desync_retries, 3);
        assert_eq!(p.desyncs_to_quarantine, Some(2));
        assert_eq!(p.desync_window, 96);
        assert_eq!(p.audit_budget, None);
        assert_eq!(p.audit_window, 100);
        assert_eq!(p.escalate_action, EscalateAction::Identify);
        p.validate().unwrap();
    }

    #[test]
    fn builder_quarantine_clamp_is_applied_eagerly() {
        use crate::session::MonitoringSession;
        use tagwatch_core::MonitorServer;
        use tagwatch_sim::TagPopulation;
        let floor = TagPopulation::with_sequential_ids(10);
        let server = MonitorServer::new(floor.ids(), 1, 0.9).unwrap();
        let session = MonitoringSession::builder(server)
            .desyncs_to_quarantine(0)
            .build();
        assert_eq!(session.policy().desyncs_to_quarantine, Some(1));
    }

    #[test]
    fn canonical_document_round_trips_byte_exactly() {
        let p = Policy::default();
        let text = p.to_text();
        let parsed = Policy::parse(&text).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn off_and_unlimited_keywords_round_trip() {
        let p = Policy {
            desyncs_to_quarantine: None,
            audit_budget: Some(4),
            escalate_action: EscalateAction::Report,
            protocol: TickProtocol::Utrp,
            site: "dock-9".to_string(),
            ..Policy::default()
        };
        let text = p.to_text();
        assert!(text.contains("desyncs_to_quarantine off"));
        assert!(text.contains("budget 4"));
        let parsed = Policy::parse(&text).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let mut text = String::from("# site policy, reviewed 2026-08\n\n");
        text.push_str(&Policy::default().to_text());
        text.push_str("\n# trailing note\n");
        assert_eq!(Policy::parse(&text).unwrap(), Policy::default());
    }

    #[test]
    fn diagnostics_are_rustc_shaped() {
        let text = Policy::default()
            .to_text()
            .replace("ticks trp", "ticks lora");
        let err = Policy::parse_named(&text, "bad.twp").unwrap_err();
        assert!(
            err.message.starts_with("error: unknown protocol `lora`"),
            "{err}"
        );
        assert!(err.message.contains("--> bad.twp:"), "{err}");
        assert!(
            err.message.contains("= help: `ticks` is `trp` or `utrp`"),
            "{err}"
        );
    }

    #[test]
    fn parse_rejects_structural_damage() {
        assert!(Policy::parse("").is_err());
        assert!(Policy::parse("not a policy\n").is_err());
        let orphan = format!("{POLICY_HEADER}\nname dock\n");
        assert!(Policy::parse(&orphan)
            .unwrap_err()
            .message
            .contains("outside any section"));
        let unknown = format!("{POLICY_HEADER}\n@section weather\nrain heavy\n");
        assert!(Policy::parse(&unknown)
            .unwrap_err()
            .message
            .contains("unknown section"));
        let missing = format!("{POLICY_HEADER}\n@section site\nname dock\n");
        let err = Policy::parse(&missing).unwrap_err();
        assert!(
            err.message
                .contains("missing `ticks` in `@section protocol`"),
            "{err}"
        );
        let dup = Policy::default().to_text() + "@section site\nname again\n";
        assert!(Policy::parse(&dup)
            .unwrap_err()
            .message
            .contains("duplicate section"));
    }

    #[test]
    fn validation_rejects_degenerate_documents() {
        let no_recovery = Policy {
            max_desync_retries: 0,
            desync_window: 0,
            ..Policy::default()
        };
        let err = no_recovery.validate().unwrap_err();
        assert!(err.message.contains("no recovery path"), "{err}");
        assert!(err.message.contains("= help:"), "{err}");

        let frozen_quarantine = Policy {
            audit_budget: Some(0),
            ..Policy::default()
        };
        let err = frozen_quarantine.validate().unwrap_err();
        assert!(
            err.message
                .contains("audit budget of 0 with quarantine enabled"),
            "{err}"
        );

        // ...but a zero budget with quarantine off is fine.
        Policy {
            audit_budget: Some(0),
            desyncs_to_quarantine: None,
            ..Policy::default()
        }
        .validate()
        .unwrap();

        let hair_trigger = Policy {
            alarms_to_escalate: 0,
            ..Policy::default()
        };
        assert!(hair_trigger.validate().is_err());

        let bad_site = Policy {
            site: "two words".to_string(),
            ..Policy::default()
        };
        assert!(bad_site.validate().is_err());

        let no_identify_budget = Policy {
            identify: IdentifyConfig {
                frame_factor: 0,
                max_rounds: 64,
            },
            ..Policy::default()
        };
        assert!(no_identify_budget.validate().is_err());
    }

    #[test]
    fn parse_points_validation_diagnostics_at_lines() {
        let text = Policy::default()
            .to_text()
            .replace("budget unlimited", "budget 0");
        let err = Policy::parse_named(&text, "site.twp").unwrap_err();
        assert!(err.message.contains("audit budget of 0"), "{err}");
        assert!(err.message.contains("--> site.twp:"), "{err}");
    }

    #[test]
    fn flat_lines_round_trip_and_embed_safely() {
        let p = Policy {
            site: "dock-9".to_string(),
            protocol: TickProtocol::Utrp,
            desyncs_to_quarantine: None,
            audit_budget: Some(12),
            ..Policy::default()
        };
        let lines = p.to_flat_lines();
        assert_eq!(lines.len(), 11);
        // Checkpoint-section safe: no `@` markers, no embedded newlines.
        assert!(lines
            .iter()
            .all(|l| !l.starts_with('@') && !l.contains('\n')));
        assert_eq!(Policy::from_flat_lines(&lines).unwrap(), p);
    }

    #[test]
    fn flat_lines_reject_unknown_and_duplicate_keys() {
        let mut lines = Policy::default().to_flat_lines();
        lines.push("color blue".to_string());
        assert!(Policy::from_flat_lines(&lines)
            .unwrap_err()
            .message
            .contains("unknown policy key"));

        let mut lines = Policy::default().to_flat_lines();
        lines.push("site other".to_string());
        assert!(Policy::from_flat_lines(&lines)
            .unwrap_err()
            .message
            .contains("duplicate policy key `site`"));

        let mut lines = Policy::default().to_flat_lines();
        lines.pop();
        assert!(Policy::from_flat_lines(&lines)
            .unwrap_err()
            .message
            .contains("missing"));
    }
}
