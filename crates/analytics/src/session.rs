//! Continuous monitoring sessions with escalation.
//!
//! The paper's protocols are single rounds; an actual deployment runs
//! them on a schedule and must decide what to do when a round alarms.
//! [`MonitoringSession`] implements the operational loop the
//! introduction implies:
//!
//! 1. **Routine** ticks run cheap TRP rounds (or UTRP when the reader
//!    is untrusted), dispatched through the protocol-generic
//!    [`Protocol`] trait and executed by a [`RoundExecutor`] — ideal by
//!    default ([`MonitoringSession::tick`]), or carrying a lossy
//!    channel and scripted faults ([`MonitoringSession::tick_with`]).
//! 2. A UTRP tick that comes back [`tagwatch_core::Verdict::Desynced`]
//!    is **retried**: the session applies the server's diagnosed
//!    counter hypothesis
//!    ([`MonitorServer::resync_from_hypothesis`]) and re-challenges
//!    with *fresh nonces* (challenges are consumed by value, so a
//!    replay is unrepresentable), up to a bounded retry budget.
//!    Suspect tags accumulate **desync strikes**; repeat offenders are
//!    **quarantined** for physical audit.
//! 3. A configurable number of **consecutive alarms** (to ride out
//!    transient blocking) escalates to **identification** — the
//!    iterative bitstring protocol of `tagwatch_core::identify` — which
//!    names the missing tags without ever collecting IDs on the air.
//!    A desynced round that exhausts its retry budget counts toward
//!    this ladder too: faults may cost retries or page an operator,
//!    but never produce a silent false "intact".
//! 4. The session keeps an auditable event log, and exposes the two
//!    operator actions long-horizon drivers need:
//!    [`audit_resync`](MonitoringSession::audit_resync) (a physical
//!    audit that re-trusts the counter mirror) and
//!    [`release_quarantined`](MonitoringSession::release_quarantined)
//!    (returning audited tags to service).
//!
//! The ladder is a **policy interpreter**: every threshold it consults
//! comes from a declarative [`Policy`] (see [`crate::policy`]), and
//! each decision it takes — an in-tick resync retry, a quarantine, an
//! escalation, an audited release — is recorded as a [`PolicyAction`]
//! on the session's [policy trace](MonitoringSession::policy_trace)
//! alongside the event log. Build a [`Policy`] directly (struct
//! update over [`Policy::default`], a parsed `tagwatch-policy v1`
//! document, or the fluent [`SessionBuilder`] knobs).

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;

use tagwatch_core::identify::{identify_missing, IdentifyConfig};
use tagwatch_core::protocol::{Protocol, Trp, Utrp};
use tagwatch_core::trp::observed_bitstring;
use tagwatch_core::{CoreError, MonitorReport, MonitorServer, RoundExecutor};
use tagwatch_obs::{Obs, ObsEvent};
use tagwatch_sim::{TagId, TagPopulation};

use crate::policy::{EscalateAction, Policy, PolicyAction};
use crate::pool::PooledEngine;

/// Which protocol routine ticks use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TickProtocol {
    /// Trusted reader: plain TRP rounds.
    Trp,
    /// Untrusted reader: UTRP rounds (counter mirror maintained).
    Utrp,
}

/// Fluent builder for [`MonitoringSession`]: wraps a server and a
/// [`Policy`] seeded with the documented defaults, so the common
/// knobs chain directly without spelling out a whole document. For
/// anything the knobs don't cover (site label, audit budgets,
/// escalation action), build the [`Policy`] by struct update or parse
/// a `tagwatch-policy v1` document and pass it to
/// [`SessionBuilder::policy`].
#[derive(Debug)]
pub struct SessionBuilder {
    server: MonitorServer,
    policy: Policy,
}

impl SessionBuilder {
    /// Applies one knob mutation to the policy under construction.
    fn apply(mut self, f: impl FnOnce(&mut Policy)) -> Self {
        f(&mut self.policy);
        self
    }

    /// Replaces the whole policy at once (e.g. a parsed document).
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Protocol for routine ticks (default [`TickProtocol::Trp`]).
    #[must_use]
    pub fn protocol(self, protocol: TickProtocol) -> Self {
        self.apply(|p| p.protocol = protocol)
    }

    /// Consecutive alarming ticks before escalation (default 2).
    #[must_use]
    pub fn alarms_to_escalate(self, count: u32) -> Self {
        self.apply(|p| p.alarms_to_escalate = count)
    }

    /// In-tick desync re-challenge budget (default 3).
    #[must_use]
    pub fn max_desync_retries(self, count: u32) -> Self {
        self.apply(|p| p.max_desync_retries = count)
    }

    /// Desync strikes before quarantine (default 2; values `<= 1`
    /// quarantine on the first offense).
    #[must_use]
    pub fn desyncs_to_quarantine(self, count: u32) -> Self {
        self.apply(|p| p.desyncs_to_quarantine = Some(count.max(1)))
    }

    /// Identification configuration for escalations.
    #[must_use]
    pub fn identify(self, config: IdentifyConfig) -> Self {
        self.apply(|p| p.identify = config)
    }

    /// Finalizes the session.
    #[must_use]
    pub fn build(self) -> MonitoringSession {
        MonitoringSession::new(self.server, self.policy)
    }
}

/// One entry in the session's audit log.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// A routine round completed (intact or alarming).
    Checked(MonitorReport),
    /// A round came back desynced; the session applied the server's
    /// diagnosed hypothesis to the counter mirror and (while the retry
    /// budget lasted) re-challenged with fresh nonces.
    Resynced {
        /// 1-based resync count within the current tick.
        attempt: u32,
        /// The hypothesis's suspect tags (empty for a uniform mirror
        /// lag, e.g. after a reader crash lost a round's advance).
        suspects: Vec<TagId>,
    },
    /// Tags crossed the desync-strike threshold and were quarantined
    /// for physical audit.
    Quarantined {
        /// The newly quarantined tags.
        tags: Vec<TagId>,
    },
    /// Consecutive alarms crossed the threshold; identification ran and
    /// produced a verdict on every tag.
    Escalated {
        /// Tags proven missing.
        missing: Vec<TagId>,
        /// Tags left unresolved within the round budget (normally
        /// empty).
        unresolved: Vec<TagId>,
        /// Slots the identification cost.
        slots_used: u64,
    },
}

impl SessionEvent {
    /// Whether this event should page an operator. A [`Resynced`]
    /// recovery is routine; a [`Quarantined`] tag needs a physical
    /// audit. [`Checked`] events defer to
    /// [`Verdict::is_alarm`](tagwatch_core::Verdict::is_alarm) through
    /// the report, keeping the alarm notion consistent across layers.
    ///
    /// [`Resynced`]: SessionEvent::Resynced
    /// [`Quarantined`]: SessionEvent::Quarantined
    /// [`Checked`]: SessionEvent::Checked
    #[must_use]
    pub fn is_alarm(&self) -> bool {
        match self {
            SessionEvent::Checked(report) => report.is_alarm(),
            SessionEvent::Resynced { .. } => false,
            SessionEvent::Quarantined { .. } => true,
            SessionEvent::Escalated {
                missing,
                unresolved,
                ..
            } => !missing.is_empty() || !unresolved.is_empty(),
        }
    }

    /// The desync suspects carried by this event, if any: the
    /// session-layer view of
    /// [`Verdict::suspects`](tagwatch_core::Verdict::suspects).
    #[must_use]
    pub fn suspects(&self) -> &[TagId] {
        match self {
            SessionEvent::Checked(report) => report.verdict.suspects(),
            SessionEvent::Resynced { suspects, .. } => suspects,
            _ => &[],
        }
    }
}

/// The escalation-ladder state a [`MonitoringSession`] must carry
/// across a restart: everything beyond the server itself that
/// influences future ticks. Collections are in ascending tag order, so
/// captures of behaviorally identical sessions are identical values —
/// the property checkpoint digests rely on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionLadderState {
    /// Alarming ticks since the last intact tick or escalation.
    pub consecutive_alarms: u32,
    /// Desync strikes per suspect tag, ascending by tag.
    pub desync_strikes: Vec<(TagId, u32)>,
    /// Tags quarantined for physical audit, ascending.
    pub quarantined: Vec<TagId>,
}

/// A long-running monitoring loop over one tag set, interpreting a
/// declarative [`Policy`].
#[derive(Debug)]
pub struct MonitoringSession {
    server: MonitorServer,
    policy: Policy,
    consecutive_alarms: u32,
    desync_strikes: BTreeMap<TagId, u32>,
    quarantined: BTreeSet<TagId>,
    log: Vec<SessionEvent>,
    // The interpreter's decision record: one PolicyAction per ladder
    // decision, parallel to (and as unbounded as) the event log.
    policy_trace: Vec<PolicyAction>,
    // Reusable field-round state: every tick runs its UTRP round in
    // this engine, so a long-lived session allocates round buffers
    // once instead of once per tick. Single-threaded by default (the
    // scalar engine, byte-identical to the pre-pool sessions);
    // `set_threads` swaps in a persistent worker pool for large
    // populations without changing any observable.
    engine: PooledEngine,
}

impl MonitoringSession {
    /// Starts a session under a declarative [`Policy`]. Prefer
    /// [`MonitoringSession::builder`] or a parsed policy document in
    /// new code; this remains the primitive they finalize into.
    #[must_use]
    pub fn new(server: MonitorServer, policy: Policy) -> Self {
        MonitoringSession {
            server,
            policy,
            consecutive_alarms: 0,
            desync_strikes: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            log: Vec::new(),
            policy_trace: Vec::new(),
            engine: PooledEngine::new(1),
        }
    }

    /// Captures the session's escalation-ladder state for a durable
    /// checkpoint. The audit log is deliberately *not* captured:
    /// drivers consume it through a cursor within a tick, so at a tick
    /// boundary the retained prefix is purely diagnostic and a
    /// restored session may start from an empty log.
    #[must_use]
    pub fn ladder_state(&self) -> SessionLadderState {
        SessionLadderState {
            consecutive_alarms: self.consecutive_alarms,
            desync_strikes: self
                .desync_strikes
                .iter()
                .map(|(&id, &strikes)| (id, strikes))
                .collect(),
            quarantined: self.quarantined.iter().copied().collect(),
        }
    }

    /// Rebuilds a session from a restored server and a captured ladder
    /// — the warm-restart twin of [`MonitoringSession::new`]. The
    /// restored session starts with an empty audit log and fresh round
    /// scratch; continuing from it is behaviorally indistinguishable
    /// from the uninterrupted session (same verdicts, same RNG draws,
    /// same events appended from here on).
    #[must_use]
    pub fn restore(server: MonitorServer, policy: Policy, ladder: &SessionLadderState) -> Self {
        MonitoringSession {
            server,
            policy,
            consecutive_alarms: ladder.consecutive_alarms,
            desync_strikes: ladder.desync_strikes.iter().copied().collect(),
            quarantined: ladder.quarantined.iter().copied().collect(),
            log: Vec::new(),
            policy_trace: Vec::new(),
            engine: PooledEngine::new(1),
        }
    }

    /// Sets how many worker threads the session's round engine scans
    /// with. `1` (the default) is the scalar engine; higher counts
    /// swap in a persistent worker pool whose shards split the
    /// active-tag arrays. Purely an execution knob: every observable —
    /// verdicts, logs, digests, RNG stream — is byte-identical at any
    /// thread count, so this is deliberately *not* part of the
    /// declarative [`Policy`] (and never serialized into durable
    /// state).
    pub fn set_threads(&mut self, threads: usize) {
        if self.engine.threads() != threads.max(1) {
            self.engine = PooledEngine::new(threads);
        }
    }

    /// Worker threads the round engine currently scans with (1 =
    /// scalar).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Starts a session builder over `server`, with every policy knob
    /// at its documented default.
    #[must_use]
    pub fn builder(server: MonitorServer) -> SessionBuilder {
        SessionBuilder {
            server,
            policy: Policy::default(),
        }
    }

    /// The underlying server (counters, history, policy).
    #[must_use]
    pub fn server(&self) -> &MonitorServer {
        &self.server
    }

    /// The session's effective declarative policy.
    #[must_use]
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The audit log, oldest first.
    #[must_use]
    pub fn log(&self) -> &[SessionEvent] {
        &self.log
    }

    /// The declarative decisions the policy interpreter has taken,
    /// oldest first — one [`PolicyAction`] per ladder decision (resync
    /// retry, quarantine, escalation, audited release), parallel to
    /// the event log.
    #[must_use]
    pub fn policy_trace(&self) -> &[PolicyAction] {
        &self.policy_trace
    }

    /// Alarming ticks since the last intact tick or escalation.
    #[must_use]
    pub fn consecutive_alarms(&self) -> u32 {
        self.consecutive_alarms
    }

    /// Desync strikes recorded against one tag.
    #[must_use]
    pub fn desync_strikes(&self, id: TagId) -> u32 {
        self.desync_strikes.get(&id).copied().unwrap_or(0)
    }

    /// Tags currently quarantined for physical audit, ascending.
    #[must_use]
    pub fn quarantined(&self) -> Vec<TagId> {
        self.quarantined.iter().copied().collect()
    }

    /// Operator action: a **physical audit** of the floor. Reads every
    /// present tag's true counter into the server mirror
    /// ([`MonitorServer::resync_counters`]), which re-trusts the mirror
    /// after an alarming UTRP round left it unsynchronized. Tags not on
    /// the floor (e.g. stolen) keep their mirrored values; once they
    /// return, audit again.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTag`] if the floor holds a tag the
    /// server never registered.
    pub fn audit_resync(&mut self, floor: &TagPopulation) -> Result<(), CoreError> {
        self.server
            .resync_counters(floor.iter().map(|t| (t.id(), t.counter())))
    }

    /// Operator action: returns audited tags to service — removes them
    /// from quarantine and clears their desync strikes. Returns the
    /// tags that were actually quarantined (unknown/unquarantined IDs
    /// are ignored).
    ///
    /// [`release_quarantined_with`] under no observer and zero
    /// recorded latency.
    ///
    /// [`release_quarantined_with`]: MonitoringSession::release_quarantined_with
    pub fn release_quarantined<I: IntoIterator<Item = TagId>>(&mut self, tags: I) -> Vec<TagId> {
        self.release_quarantined_with(tags, 0, None)
    }

    /// [`release_quarantined`], optionally instrumented: when an
    /// observer is supplied the audit is counted and the time the
    /// released tags spent quarantined (`latency_ticks`, tracked by
    /// the driver) is recorded. A non-empty release is logged on the
    /// policy trace as [`PolicyAction::ReleaseAudited`] either way.
    ///
    /// [`release_quarantined`]: MonitoringSession::release_quarantined
    pub fn release_quarantined_with<I: IntoIterator<Item = TagId>>(
        &mut self,
        tags: I,
        latency_ticks: u64,
        obs: Option<&Obs>,
    ) -> Vec<TagId> {
        let mut released = Vec::new();
        for tag in tags {
            if self.quarantined.remove(&tag) {
                self.desync_strikes.remove(&tag);
                released.push(tag);
            }
        }
        if !released.is_empty() {
            self.policy_trace.push(PolicyAction::ReleaseAudited {
                released: released.len(),
            });
            if let Some(obs) = obs {
                obs.inc(obs.m.audits_total);
                obs.observe(obs.m.audit_latency_ticks, latency_ticks as f64);
                obs.set_gauge(obs.m.quarantine_occupancy, self.quarantined.len() as u64);
                obs.emit(ObsEvent::AuditCompleted {
                    released: released.len() as u64,
                    latency_ticks,
                });
            }
        }
        released
    }

    /// Records one desync strike per suspect and returns the tags that
    /// just crossed the policy's quarantine threshold (always empty
    /// when the policy disables quarantine — strikes still accumulate
    /// for diagnostics).
    fn strike(&mut self, suspects: &[TagId]) -> Vec<TagId> {
        let mut newly = Vec::new();
        for &tag in suspects {
            let strikes = self.desync_strikes.entry(tag).or_insert(0);
            *strikes += 1;
            let Some(threshold) = self.policy.desyncs_to_quarantine else {
                continue;
            };
            if *strikes >= threshold.max(1) && self.quarantined.insert(tag) {
                newly.push(tag);
            }
        }
        newly
    }

    /// Runs one scheduled check over the ideal channel with no faults
    /// and no observer: [`tick_with`](MonitoringSession::tick_with)
    /// under [`RoundExecutor::ideal`], byte-identically.
    ///
    /// # Errors
    ///
    /// See [`tick_with`](MonitoringSession::tick_with).
    pub fn tick<R: Rng + ?Sized>(
        &mut self,
        floor: &mut TagPopulation,
        rng: &mut R,
    ) -> Result<&SessionEvent, CoreError> {
        self.tick_with(floor, &RoundExecutor::ideal(), rng, None)
    }

    /// Runs one scheduled check against the physical floor through
    /// `executor`, interpreting the session's [`Policy`]: escalation
    /// when the alarm threshold is reached, in-tick desync recovery,
    /// strike-driven quarantine. Returns the event appended to the
    /// log. With `obs: Some(..)`, round and verdict telemetry flows
    /// through the observed protocol paths and every ladder decision
    /// is recorded into the observer as it climbs; with `None` (or a
    /// disabled [`Obs`]) the tick is behaviorally identical — same
    /// log, same RNG stream — so drivers thread one code path and pay
    /// for telemetry only when it is on.
    ///
    /// A UTRP check that comes back [`Verdict::Desynced`] is recovered
    /// in-tick: the diagnosed hypothesis is applied to the counter
    /// mirror and the check reruns with a *fresh* challenge, up to
    /// [`Policy::max_desync_retries`] times. Each recovery logs a
    /// [`SessionEvent::Resynced`] (and a [`PolicyAction::RetryResync`]
    /// on the policy trace) and strikes the suspects; a desync that
    /// outlives the budget counts as an alarming tick. An observed
    /// quarantine transition is a postmortem trigger: it latches the
    /// flight-recorder dump (first trigger wins).
    ///
    /// Escalation runs the policy's [`EscalateAction`]:
    /// [`Identify`](EscalateAction::Identify) re-scans over the ideal
    /// channel (a deliberate, controlled re-inventory rather than the
    /// routine round's radio conditions);
    /// [`Report`](EscalateAction::Report) records the escalation with
    /// empty verdicts and spends no identification rounds.
    ///
    /// [`Verdict::Desynced`]: tagwatch_core::Verdict::Desynced
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (e.g. a desynchronized counter mirror
    /// when ticking with UTRP — resolve via
    /// [`audit_resync`](MonitoringSession::audit_resync)).
    pub fn tick_with<R: Rng + ?Sized>(
        &mut self,
        floor: &mut TagPopulation,
        executor: &RoundExecutor,
        rng: &mut R,
        obs: Option<&Obs>,
    ) -> Result<&SessionEvent, CoreError> {
        let report = match self.policy.protocol {
            TickProtocol::Trp => match obs {
                Some(obs) => Trp.run_round_observed(
                    &mut self.server,
                    floor,
                    executor,
                    &mut self.engine,
                    rng,
                    obs,
                )?,
                None => Trp.run_round(&mut self.server, floor, executor, &mut self.engine, rng)?,
            },
            TickProtocol::Utrp => {
                let mut attempt = 0u32;
                let report = loop {
                    let report = match obs {
                        Some(obs) => Utrp.run_round_observed(
                            &mut self.server,
                            floor,
                            executor,
                            &mut self.engine,
                            rng,
                            obs,
                        )?,
                        None => Utrp.run_round(
                            &mut self.server,
                            floor,
                            executor,
                            &mut self.engine,
                            rng,
                        )?,
                    };
                    if !report.verdict.is_desynced() {
                        break report;
                    }
                    // Diagnosed desync: apply the hypothesis so
                    // monitoring can continue, strike the suspects, and
                    // re-challenge with fresh nonces while the retry
                    // budget lasts.
                    let suspects = self.server.resync_from_hypothesis()?;
                    attempt += 1;
                    self.policy_trace.push(PolicyAction::RetryResync {
                        attempt,
                        suspects: suspects.len(),
                    });
                    if let Some(obs) = obs {
                        obs.inc(obs.m.resync_attempts);
                        obs.emit(ObsEvent::Resynced {
                            attempt: u64::from(attempt),
                            suspects: suspects.len() as u64,
                        });
                    }
                    self.log.push(SessionEvent::Resynced {
                        attempt,
                        suspects: suspects.clone(),
                    });
                    let newly = self.strike(&suspects);
                    if !newly.is_empty() {
                        if let Some(threshold) = self.policy.desyncs_to_quarantine {
                            self.policy_trace.push(PolicyAction::Quarantine {
                                tags: newly.len(),
                                threshold,
                            });
                        }
                        if let Some(obs) = obs {
                            obs.inc(obs.m.quarantine_events);
                            obs.set_gauge(
                                obs.m.quarantine_occupancy,
                                self.quarantined.len() as u64,
                            );
                            obs.emit(ObsEvent::Quarantined {
                                tags: newly.len() as u64,
                                occupancy: self.quarantined.len() as u64,
                            });
                            obs.capture_dump("quarantine");
                        }
                        self.log.push(SessionEvent::Quarantined { tags: newly });
                    }
                    if attempt > self.policy.max_desync_retries {
                        break report;
                    }
                };
                if let Some(obs) = obs {
                    if attempt > 0 {
                        obs.observe(obs.m.resync_depth, f64::from(attempt));
                        if !report.verdict.is_desynced() {
                            obs.inc(obs.m.resync_successes);
                        }
                    }
                }
                report
            }
        };

        // A desync that exhausted its retries never silently passes —
        // it climbs the same ladder as an alarm.
        if report.is_alarm() || report.verdict.is_desynced() {
            self.consecutive_alarms += 1;
        } else {
            self.consecutive_alarms = 0;
        }

        if self.consecutive_alarms >= self.policy.alarms_to_escalate {
            let after_alarms = self.consecutive_alarms;
            self.consecutive_alarms = 0;
            self.policy_trace.push(PolicyAction::Escalate {
                action: self.policy.escalate_action,
                after_alarms,
            });
            let (missing, unresolved, slots_used) = match self.policy.escalate_action {
                EscalateAction::Identify => {
                    let registry = self.server.registered_ids();
                    let audible: Vec<TagId> = floor
                        .iter()
                        .filter(|t| !t.is_detuned())
                        .map(|t| t.id())
                        .collect();
                    let outcome =
                        identify_missing(&registry, self.policy.identify, rng, |challenge| {
                            Ok(observed_bitstring(&audible, challenge))
                        })?;
                    (outcome.missing, outcome.unresolved, outcome.slots_used)
                }
                EscalateAction::Report => (Vec::new(), Vec::new(), 0),
            };
            if let Some(obs) = obs {
                obs.inc(obs.m.escalations);
                obs.emit(ObsEvent::Escalated {
                    missing: missing.len() as u64,
                    unresolved: unresolved.len() as u64,
                    slots_used,
                });
            }
            self.log.push(SessionEvent::Checked(report));
            self.log.push(SessionEvent::Escalated {
                missing,
                unresolved,
                slots_used,
            });
        } else {
            self.log.push(SessionEvent::Checked(report));
        }
        // lint:allow(s2-panic): a SessionEvent was pushed on every branch directly above
        Ok(self.log.last().expect("just pushed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_core::utrp::run_honest_reader;

    fn session(n: usize, m: u64, policy: Policy) -> (MonitoringSession, TagPopulation) {
        let floor = TagPopulation::with_sequential_ids(n);
        let server = MonitorServer::new(floor.ids(), m, 0.95).unwrap();
        (MonitoringSession::new(server, policy), floor)
    }

    #[test]
    fn quiet_floor_never_escalates() {
        let (mut session, mut floor) = session(200, 5, Policy::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..15 {
            let event = session.tick(&mut floor, &mut rng).unwrap();
            assert!(!event.is_alarm());
        }
        assert_eq!(session.log().len(), 15);
        assert!(session
            .log()
            .iter()
            .all(|e| matches!(e, SessionEvent::Checked(_))));
    }

    #[test]
    fn persistent_theft_escalates_and_names_the_tags() {
        let (mut session, mut floor) = session(300, 5, Policy::default());
        let mut rng = StdRng::seed_from_u64(2);

        // Warm-up tick, then the theft.
        session.tick(&mut floor, &mut rng).unwrap();
        let stolen = floor.remove_random(8, &mut rng).unwrap();
        let mut stolen_ids: Vec<TagId> = stolen.iter().map(|t| t.id()).collect();
        stolen_ids.sort_unstable();

        // Tick until escalation (2 consecutive alarms at default policy;
        // each alarming tick has prob > 0.95, so a handful of ticks
        // suffice deterministically under this seed).
        let mut escalated = None;
        for _ in 0..10 {
            session.tick(&mut floor, &mut rng).unwrap();
            if let Some(SessionEvent::Escalated { missing, .. }) = session.log().last() {
                escalated = Some(missing.clone());
                break;
            }
        }
        let missing = escalated.expect("escalation never happened");
        assert_eq!(missing, stolen_ids);
    }

    #[test]
    fn transient_blocking_rides_out_below_threshold() {
        let policy = Policy {
            alarms_to_escalate: 3,
            ..Policy::default()
        };
        let (mut session, mut floor) = session(200, 5, policy);
        let mut rng = StdRng::seed_from_u64(3);
        let ids = floor.ids();

        // One tick with a blocked tag (may alarm), then unblock.
        floor.get_mut(ids[0]).unwrap().set_detuned(true);
        session.tick(&mut floor, &mut rng).unwrap();
        floor.get_mut(ids[0]).unwrap().set_detuned(false);

        // Healthy ticks reset the counter; no escalation ever fires.
        for _ in 0..5 {
            session.tick(&mut floor, &mut rng).unwrap();
        }
        assert_eq!(session.consecutive_alarms(), 0);
        assert!(session
            .log()
            .iter()
            .all(|e| matches!(e, SessionEvent::Checked(_))));
    }

    #[test]
    fn utrp_sessions_maintain_the_counter_mirror() {
        let policy = Policy {
            protocol: TickProtocol::Utrp,
            ..Policy::default()
        };
        let (mut session, mut floor) = session(100, 3, policy);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let event = session.tick(&mut floor, &mut rng).unwrap();
            assert!(!event.is_alarm());
        }
        // Mirror still exact.
        for tag in floor.iter() {
            assert_eq!(
                session.server().counter_of(tag.id()).unwrap(),
                tag.counter()
            );
        }
    }

    #[test]
    fn desynced_tick_resyncs_and_rechallenges() {
        use tagwatch_core::ServerConfig;
        // A round runs in the field but its response never reaches the
        // server: the mirror lags the whole population uniformly.
        let mut floor = TagPopulation::with_sequential_ids(60);
        let config = ServerConfig {
            desync_window: 64,
            ..ServerConfig::default()
        };
        let server = MonitorServer::with_config(floor.ids(), 3, 0.9, config).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let timing = server.config().timing;
        let lost = server.issue_utrp_challenge(&mut rng).unwrap();
        run_honest_reader(&mut floor, &lost, &timing).unwrap();

        let policy = Policy {
            protocol: TickProtocol::Utrp,
            ..Policy::default()
        };
        let mut session = MonitoringSession::new(server, policy);
        let event = session.tick(&mut floor, &mut rng).unwrap();
        // The tick self-healed: resync + fresh challenge ended intact.
        assert!(
            matches!(event, SessionEvent::Checked(r) if r.verdict.is_intact()),
            "{event:?}"
        );
        assert_eq!(session.consecutive_alarms(), 0);
        assert!(session.log().iter().any(|e| matches!(
            e,
            SessionEvent::Resynced { suspects, .. } if suspects.is_empty()
        )));
        assert!(
            session.quarantined().is_empty(),
            "uniform lag has no suspects"
        );
        for _ in 0..3 {
            assert!(!session.tick(&mut floor, &mut rng).unwrap().is_alarm());
        }
    }

    #[test]
    fn repeated_desync_suspect_is_quarantined_then_released() {
        use tagwatch_core::faulty::run_honest_reader_with;
        use tagwatch_core::utrp::attributed_round;
        use tagwatch_core::ServerConfig;
        use tagwatch_sim::{Channel, Counter, FaultPlan};

        let mut floor = TagPopulation::with_sequential_ids(25);
        let config = ServerConfig {
            desync_window: 8,
            ..ServerConfig::default()
        };
        let mut server = MonitorServer::with_config(floor.ids(), 2, 0.9, config).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let timing = server.config().timing;

        // Round 1 (outside the session): the first-slot replier misses
        // the round's last announcement — the round verifies intact but
        // its counter silently falls one behind the mirror.
        let ch1 = server.issue_utrp_challenge(&mut rng).unwrap();
        let registry: Vec<(TagId, Counter)> = server
            .registered_ids()
            .into_iter()
            .map(|id| (id, Counter::ZERO))
            .collect();
        let (dry, attribution) = attributed_round(&registry, &ch1).unwrap();
        let first_slot = dry.bitstring.iter_ones().next().unwrap();
        let victim = attribution[first_slot][0];
        let plan = FaultPlan::new().lose_announcement(dry.announcements - 1, [victim]);
        let response = run_honest_reader_with(
            &mut floor,
            &ch1,
            &timing,
            &Channel::ideal(),
            &plan,
            &mut rng,
        )
        .unwrap();
        assert!(server
            .verify_utrp(ch1, &response)
            .unwrap()
            .verdict
            .is_intact());

        // First offense quarantines under this policy.
        let mut session = MonitoringSession::builder(server)
            .protocol(TickProtocol::Utrp)
            .desyncs_to_quarantine(1)
            .build();
        let event = session.tick(&mut floor, &mut rng).unwrap();
        assert!(
            matches!(event, SessionEvent::Checked(r) if r.verdict.is_intact()),
            "{event:?}"
        );
        assert!(session.log().iter().any(|e| matches!(
            e,
            SessionEvent::Resynced { suspects, .. } if suspects == &[victim]
        )));
        assert!(session.log().iter().any(|e| matches!(
            e,
            SessionEvent::Quarantined { tags } if tags == &[victim]
        )));
        assert_eq!(session.quarantined(), vec![victim]);
        assert_eq!(session.desync_strikes(victim), 1);
        // The interpreter recorded its decisions declaratively.
        assert!(session.policy_trace().contains(&PolicyAction::RetryResync {
            attempt: 1,
            suspects: 1
        }));
        assert!(session.policy_trace().contains(&PolicyAction::Quarantine {
            tags: 1,
            threshold: 1
        }));

        // The operator audits the tag and returns it to service.
        let released = session.release_quarantined([victim, TagId::new(999)]);
        assert_eq!(released, vec![victim]);
        assert!(session.quarantined().is_empty());
        assert_eq!(session.desync_strikes(victim), 0);
        assert_eq!(
            session.policy_trace().last(),
            Some(&PolicyAction::ReleaseAudited { released: 1 })
        );
    }

    #[test]
    fn zero_retry_budget_counts_desync_toward_escalation() {
        use tagwatch_core::ServerConfig;
        let mut floor = TagPopulation::with_sequential_ids(60);
        let config = ServerConfig {
            desync_window: 64,
            ..ServerConfig::default()
        };
        let server = MonitorServer::with_config(floor.ids(), 3, 0.9, config).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let timing = server.config().timing;
        let lost = server.issue_utrp_challenge(&mut rng).unwrap();
        run_honest_reader(&mut floor, &lost, &timing).unwrap();

        let policy = Policy {
            protocol: TickProtocol::Utrp,
            max_desync_retries: 0,
            alarms_to_escalate: 3,
            ..Policy::default()
        };
        let mut session = MonitoringSession::new(server, policy);
        let event = session.tick(&mut floor, &mut rng).unwrap();
        // No retry: the desynced report stands and climbs the ladder...
        assert!(
            matches!(event, SessionEvent::Checked(r) if r.verdict.is_desynced()),
            "{event:?}"
        );
        assert_eq!(session.consecutive_alarms(), 1);
        // ...but the mirror was still recovered, so the next tick is
        // intact and resets the counter.
        let event = session.tick(&mut floor, &mut rng).unwrap();
        assert!(!event.is_alarm());
        assert_eq!(session.consecutive_alarms(), 0);
    }

    #[test]
    fn escalation_resets_the_alarm_counter() {
        let policy = Policy {
            alarms_to_escalate: 1,
            ..Policy::default()
        };
        let (mut session, mut floor) = session(150, 2, policy);
        let mut rng = StdRng::seed_from_u64(5);
        floor.remove_random(5, &mut rng).unwrap();
        session.tick(&mut floor, &mut rng).unwrap();
        assert!(matches!(
            session.log().last(),
            Some(SessionEvent::Escalated { .. })
        ));
        assert_eq!(session.consecutive_alarms(), 0);
    }

    #[test]
    fn builders_mirror_the_documented_defaults() {
        let floor = TagPopulation::with_sequential_ids(20);
        let server = MonitorServer::new(floor.ids(), 1, 0.9).unwrap();
        let session = MonitoringSession::builder(server).build();
        assert_eq!(*session.policy(), Policy::default());

        let expected = Policy {
            protocol: TickProtocol::Utrp,
            alarms_to_escalate: 4,
            max_desync_retries: 1,
            desyncs_to_quarantine: Some(7),
            ..Policy::default()
        };
        let floor = TagPopulation::with_sequential_ids(20);
        let server = MonitorServer::new(floor.ids(), 1, 0.9).unwrap();
        let session = MonitoringSession::builder(server)
            .protocol(TickProtocol::Utrp)
            .alarms_to_escalate(4)
            .max_desync_retries(1)
            .desyncs_to_quarantine(7)
            .build();
        // The fluent knobs build exactly the declarative policy.
        assert_eq!(*session.policy(), expected);
    }

    #[test]
    fn tick_is_byte_identical_to_tick_with_ideal_executor() {
        // The unified-executor regression: the convenience tick and an
        // explicit ideal executor must produce identical logs, server
        // histories, and RNG streams.
        use rand::Rng as _;
        for protocol in [TickProtocol::Trp, TickProtocol::Utrp] {
            let policy = Policy {
                protocol,
                ..Policy::default()
            };
            let (mut a, mut floor_a) = session(120, 3, policy.clone());
            let (mut b, mut floor_b) = session(120, 3, policy);
            let mut rng_a = StdRng::seed_from_u64(31);
            let mut rng_b = StdRng::seed_from_u64(31);
            let ideal = RoundExecutor::ideal();
            for _ in 0..4 {
                a.tick(&mut floor_a, &mut rng_a).unwrap();
                b.tick_with(&mut floor_b, &ideal, &mut rng_b, None).unwrap();
            }
            assert_eq!(a.log(), b.log(), "{protocol:?}");
            assert_eq!(a.server().history(), b.server().history());
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG diverged");
        }
    }

    #[test]
    fn observed_tick_matches_plain_and_counts_rounds() {
        use rand::Rng as _;
        use tagwatch_obs::Obs;
        for (protocol, enabled) in [
            (TickProtocol::Trp, true),
            (TickProtocol::Trp, false),
            (TickProtocol::Utrp, true),
            (TickProtocol::Utrp, false),
        ] {
            let policy = Policy {
                protocol,
                ..Policy::default()
            };
            let (mut a, mut floor_a) = session(120, 3, policy.clone());
            let (mut b, mut floor_b) = session(120, 3, policy);
            let mut rng_a = StdRng::seed_from_u64(31);
            let mut rng_b = StdRng::seed_from_u64(31);
            let ideal = RoundExecutor::ideal();
            let obs = if enabled { Obs::new() } else { Obs::disabled() };
            for _ in 0..4 {
                a.tick_with(&mut floor_a, &ideal, &mut rng_a, None).unwrap();
                b.tick_with(&mut floor_b, &ideal, &mut rng_b, Some(&obs))
                    .unwrap();
            }
            assert_eq!(a.log(), b.log(), "{protocol:?} enabled={enabled}");
            assert_eq!(a.server().history(), b.server().history());
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG diverged");
            let expected = if enabled { 4 } else { 0 };
            assert_eq!(obs.counter(obs.m.rounds_total), expected);
        }
    }

    #[test]
    fn observed_desync_records_resync_telemetry() {
        use tagwatch_core::ServerConfig;
        use tagwatch_obs::Obs;
        let mut floor = TagPopulation::with_sequential_ids(60);
        let config = ServerConfig {
            desync_window: 64,
            ..ServerConfig::default()
        };
        let server = MonitorServer::with_config(floor.ids(), 3, 0.9, config).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let timing = server.config().timing;
        let lost = server.issue_utrp_challenge(&mut rng).unwrap();
        run_honest_reader(&mut floor, &lost, &timing).unwrap();

        let policy = Policy {
            protocol: TickProtocol::Utrp,
            ..Policy::default()
        };
        let mut session = MonitoringSession::new(server, policy);
        let obs = Obs::new();
        let ideal = RoundExecutor::ideal();
        let event = session
            .tick_with(&mut floor, &ideal, &mut rng, Some(&obs))
            .unwrap();
        assert!(matches!(event, SessionEvent::Checked(r) if r.verdict.is_intact()));
        assert_eq!(obs.counter(obs.m.resync_attempts), 1);
        assert_eq!(obs.counter(obs.m.resync_successes), 1);
        assert_eq!(obs.counter(obs.m.verify_desynced), 1);
        assert_eq!(obs.counter(obs.m.verify_intact), 1);
        // The desync latched a postmortem dump with the lead-up events.
        let dump = obs.dump().expect("desync latches the flight dump");
        assert_eq!(dump.reason, "desync");
    }

    #[test]
    fn observed_quarantine_latches_dump_and_audit_records_latency() {
        use tagwatch_core::faulty::run_honest_reader_with;
        use tagwatch_core::utrp::attributed_round;
        use tagwatch_core::ServerConfig;
        use tagwatch_obs::Obs;
        use tagwatch_sim::{Channel, Counter, FaultPlan};

        let mut floor = TagPopulation::with_sequential_ids(25);
        let config = ServerConfig {
            desync_window: 8,
            ..ServerConfig::default()
        };
        let mut server = MonitorServer::with_config(floor.ids(), 2, 0.9, config).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let timing = server.config().timing;

        let ch1 = server.issue_utrp_challenge(&mut rng).unwrap();
        let registry: Vec<(TagId, Counter)> = server
            .registered_ids()
            .into_iter()
            .map(|id| (id, Counter::ZERO))
            .collect();
        let (dry, attribution) = attributed_round(&registry, &ch1).unwrap();
        let first_slot = dry.bitstring.iter_ones().next().unwrap();
        let victim = attribution[first_slot][0];
        let plan = FaultPlan::new().lose_announcement(dry.announcements - 1, [victim]);
        let response = run_honest_reader_with(
            &mut floor,
            &ch1,
            &timing,
            &Channel::ideal(),
            &plan,
            &mut rng,
        )
        .unwrap();
        assert!(server
            .verify_utrp(ch1, &response)
            .unwrap()
            .verdict
            .is_intact());

        let mut session = MonitoringSession::builder(server)
            .protocol(TickProtocol::Utrp)
            .desyncs_to_quarantine(1)
            .build();
        let obs = Obs::new();
        let ideal = RoundExecutor::ideal();
        session
            .tick_with(&mut floor, &ideal, &mut rng, Some(&obs))
            .unwrap();
        assert_eq!(session.quarantined(), vec![victim]);
        assert_eq!(obs.counter(obs.m.quarantine_events), 1);
        assert_eq!(obs.gauge(obs.m.quarantine_occupancy), 1);
        // The desync verdict fired first, so the first-wins latch names
        // it; the quarantine trigger is a no-op afterwards.
        assert!(obs.dump().is_some());

        let released = session.release_quarantined_with([victim], 3, Some(&obs));
        assert_eq!(released, vec![victim]);
        assert_eq!(obs.counter(obs.m.audits_total), 1);
        assert_eq!(obs.gauge(obs.m.quarantine_occupancy), 0);
        assert!(obs
            .flight_jsonl()
            .contains("\"type\":\"audit_completed\",\"released\":1,\"latency_ticks\":3"));
    }

    #[test]
    fn ladder_capture_restore_is_a_warm_restart() {
        use rand::Rng as _;
        use tagwatch_core::{ServerConfig, StateCapture, StateRestore};

        let policy = Policy {
            protocol: TickProtocol::Utrp,
            desyncs_to_quarantine: Some(1),
            ..Policy::default()
        };
        let (mut original, mut floor_a) = session(80, 3, policy.clone());
        let mut rng_a = StdRng::seed_from_u64(21);
        for _ in 0..3 {
            original.tick(&mut floor_a, &mut rng_a).unwrap();
        }

        // Capture at a tick boundary, rebuild, and continue both.
        let ladder = original.ladder_state();
        let server = MonitorServer::restore_state(
            original.server().capture_state(),
            ServerConfig::default(),
        )
        .unwrap();
        let mut restored = MonitoringSession::restore(server, policy, &ladder);
        assert_eq!(restored.ladder_state(), ladder);
        assert!(restored.log().is_empty(), "restored log starts empty");

        let mut floor_b = floor_a.clone();
        let mut rng_b = rng_a.clone();
        let before = original.log().len();
        for _ in 0..4 {
            original.tick(&mut floor_a, &mut rng_a).unwrap();
            restored.tick(&mut floor_b, &mut rng_b).unwrap();
        }
        assert_eq!(&original.log()[before..], restored.log());
        assert_eq!(original.ladder_state(), restored.ladder_state());
        assert_eq!(original.server().snapshot(), restored.server().snapshot());
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG diverged");
    }

    #[test]
    fn faulty_tick_with_truncation_alarms_and_audit_recovers() {
        use tagwatch_core::ServerConfig;
        use tagwatch_sim::{Channel, FaultPlan};

        let mut floor = TagPopulation::with_sequential_ids(60);
        let config = ServerConfig {
            desync_window: 128,
            ..ServerConfig::default()
        };
        let server = MonitorServer::with_config(floor.ids(), 3, 0.9, config).unwrap();
        let mut session = MonitoringSession::builder(server)
            .protocol(TickProtocol::Utrp)
            .alarms_to_escalate(10)
            .build();
        let mut rng = StdRng::seed_from_u64(8);

        // Truncated response: an alarm, never an error or silent pass.
        let truncating = RoundExecutor::new(
            Channel::ideal(),
            Some(FaultPlan::new().truncate_response(8)),
        );
        let event = session
            .tick_with(&mut floor, &truncating, &mut rng, None)
            .unwrap();
        assert!(event.is_alarm());

        // The spent challenge advanced the field but not the mirror; the
        // next clean tick diagnoses the uniform lead and self-heals.
        let event = session.tick(&mut floor, &mut rng).unwrap();
        assert!(
            matches!(event, SessionEvent::Checked(r) if r.verdict.is_intact()),
            "{event:?}"
        );

        // audit_resync is idempotent on a healthy floor.
        session.audit_resync(&floor).unwrap();
        assert!(session.server().counters_synced());
        assert!(!session.tick(&mut floor, &mut rng).unwrap().is_alarm());
    }

    #[test]
    fn observed_tick_is_byte_identical_to_unobserved() {
        use rand::Rng as _;
        use tagwatch_obs::Obs;
        let policy = Policy {
            protocol: TickProtocol::Utrp,
            ..Policy::default()
        };
        let (mut a, mut floor_a) = session(120, 3, policy.clone());
        let (mut b, mut floor_b) = session(120, 3, policy);
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = StdRng::seed_from_u64(31);
        let ideal = RoundExecutor::ideal();
        let obs_a = Obs::new();
        for _ in 0..4 {
            a.tick_with(&mut floor_a, &ideal, &mut rng_a, Some(&obs_a))
                .unwrap();
            b.tick_with(&mut floor_b, &ideal, &mut rng_b, None).unwrap();
        }
        assert_eq!(a.log(), b.log());
        assert_eq!(a.policy_trace(), b.policy_trace());
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG diverged");
        assert!(obs_a.counter(obs_a.m.rounds_total) > 0);
        assert_eq!(
            a.release_quarantined_with([TagId::new(0)], 1, Some(&obs_a)),
            b.release_quarantined_with([TagId::new(0)], 1, None)
        );
    }

    #[test]
    fn report_escalation_spends_no_identification_rounds() {
        let policy = Policy {
            alarms_to_escalate: 1,
            escalate_action: EscalateAction::Report,
            ..Policy::default()
        };
        let floor = TagPopulation::with_sequential_ids(150);
        let server = MonitorServer::new(floor.ids(), 2, 0.95).unwrap();
        let mut session = MonitoringSession::new(server, policy);
        let mut floor = floor;
        let mut rng = StdRng::seed_from_u64(5);
        floor.remove_random(5, &mut rng).unwrap();
        session.tick(&mut floor, &mut rng).unwrap();
        // The ladder topped out, but the policy prescribes a log-only
        // escalation: no identification ran, no tags were named.
        assert!(matches!(
            session.log().last(),
            Some(SessionEvent::Escalated {
                missing,
                unresolved,
                slots_used: 0
            }) if missing.is_empty() && unresolved.is_empty()
        ));
        assert!(session.policy_trace().contains(&PolicyAction::Escalate {
            action: EscalateAction::Report,
            after_alarms: 1
        }));
    }

    #[test]
    fn quarantine_off_accumulates_strikes_without_quarantining() {
        let policy = Policy {
            desyncs_to_quarantine: None,
            ..Policy::default()
        };
        let floor = TagPopulation::with_sequential_ids(10);
        let server = MonitorServer::new(floor.ids(), 2, 0.95).unwrap();
        let mut session = MonitoringSession::new(server, policy);
        let tag = floor.ids()[0];
        for _ in 0..5 {
            assert!(session.strike(&[tag]).is_empty());
        }
        assert_eq!(session.desync_strikes(tag), 5);
        assert!(session.quarantined().is_empty());
    }
}
