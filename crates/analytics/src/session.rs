//! Continuous monitoring sessions with escalation.
//!
//! The paper's protocols are single rounds; an actual deployment runs
//! them on a schedule and must decide what to do when a round alarms.
//! [`MonitoringSession`] implements the operational loop the
//! introduction implies:
//!
//! 1. **Routine** ticks run cheap TRP rounds (or UTRP when the reader
//!    is untrusted).
//! 2. A configurable number of **consecutive alarms** (to ride out
//!    transient blocking) escalates to **identification** — the
//!    iterative bitstring protocol of `tagwatch_core::identify` — which
//!    names the missing tags without ever collecting IDs on the air.
//! 3. The session keeps an auditable event log.

use rand::Rng;

use tagwatch_core::identify::{identify_missing, IdentifyConfig};
use tagwatch_core::trp::observed_bitstring;
use tagwatch_core::utrp::run_honest_reader;
use tagwatch_core::{CoreError, MonitorReport, MonitorServer};
use tagwatch_sim::{TagId, TagPopulation};

/// Which protocol routine ticks use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TickProtocol {
    /// Trusted reader: plain TRP rounds.
    Trp,
    /// Untrusted reader: UTRP rounds (counter mirror maintained).
    Utrp,
}

/// Session policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionPolicy {
    /// Protocol for routine ticks.
    pub protocol: TickProtocol,
    /// Consecutive alarming ticks before escalating to identification.
    pub alarms_to_escalate: u32,
    /// Identification configuration used on escalation.
    pub identify: IdentifyConfig,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        SessionPolicy {
            protocol: TickProtocol::Trp,
            alarms_to_escalate: 2,
            identify: IdentifyConfig::default(),
        }
    }
}

/// One entry in the session's audit log.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// A routine round completed (intact or alarming).
    Checked(MonitorReport),
    /// Consecutive alarms crossed the threshold; identification ran and
    /// produced a verdict on every tag.
    Escalated {
        /// Tags proven missing.
        missing: Vec<TagId>,
        /// Tags left unresolved within the round budget (normally
        /// empty).
        unresolved: Vec<TagId>,
        /// Slots the identification cost.
        slots_used: u64,
    },
}

impl SessionEvent {
    /// Whether this event is an alarm of either kind.
    #[must_use]
    pub fn is_alarm(&self) -> bool {
        match self {
            SessionEvent::Checked(report) => report.is_alarm(),
            SessionEvent::Escalated {
                missing,
                unresolved,
                ..
            } => !missing.is_empty() || !unresolved.is_empty(),
        }
    }
}

/// A long-running monitoring loop over one tag set.
#[derive(Debug)]
pub struct MonitoringSession {
    server: MonitorServer,
    policy: SessionPolicy,
    consecutive_alarms: u32,
    log: Vec<SessionEvent>,
}

impl MonitoringSession {
    /// Starts a session.
    #[must_use]
    pub fn new(server: MonitorServer, policy: SessionPolicy) -> Self {
        MonitoringSession {
            server,
            policy,
            consecutive_alarms: 0,
            log: Vec::new(),
        }
    }

    /// The underlying server (counters, history, policy).
    #[must_use]
    pub fn server(&self) -> &MonitorServer {
        &self.server
    }

    /// The audit log, oldest first.
    #[must_use]
    pub fn log(&self) -> &[SessionEvent] {
        &self.log
    }

    /// Alarming ticks since the last intact tick or escalation.
    #[must_use]
    pub fn consecutive_alarms(&self) -> u32 {
        self.consecutive_alarms
    }

    /// Runs one scheduled check against the physical floor, escalating
    /// to identification when the alarm threshold is reached. Returns
    /// the event appended to the log.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (e.g. a desynchronized counter mirror
    /// when ticking with UTRP — resolve via the server's resync flow).
    pub fn tick<R: Rng + ?Sized>(
        &mut self,
        floor: &mut TagPopulation,
        rng: &mut R,
    ) -> Result<&SessionEvent, CoreError> {
        let report = match self.policy.protocol {
            TickProtocol::Trp => {
                let challenge = self.server.issue_trp_challenge(rng)?;
                let audible: Vec<TagId> = floor
                    .iter()
                    .filter(|t| !t.is_detuned())
                    .map(|t| t.id())
                    .collect();
                let bs = observed_bitstring(&audible, &challenge);
                self.server.verify_trp(challenge, &bs)?
            }
            TickProtocol::Utrp => {
                let challenge = self.server.issue_utrp_challenge(rng)?;
                let timing = self.server.config().timing;
                let response = run_honest_reader(floor, &challenge, &timing)?;
                self.server.verify_utrp(challenge, &response)?
            }
        };

        if report.is_alarm() {
            self.consecutive_alarms += 1;
        } else {
            self.consecutive_alarms = 0;
        }

        if self.consecutive_alarms >= self.policy.alarms_to_escalate {
            self.consecutive_alarms = 0;
            let registry = self.server.registered_ids();
            let audible: Vec<TagId> = floor
                .iter()
                .filter(|t| !t.is_detuned())
                .map(|t| t.id())
                .collect();
            let outcome = identify_missing(&registry, self.policy.identify, rng, |challenge| {
                Ok(observed_bitstring(&audible, challenge))
            })?;
            self.log.push(SessionEvent::Checked(report));
            self.log.push(SessionEvent::Escalated {
                missing: outcome.missing,
                unresolved: outcome.unresolved,
                slots_used: outcome.slots_used,
            });
        } else {
            self.log.push(SessionEvent::Checked(report));
        }
        Ok(self.log.last().expect("just pushed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(n: usize, m: u64, policy: SessionPolicy) -> (MonitoringSession, TagPopulation) {
        let floor = TagPopulation::with_sequential_ids(n);
        let server = MonitorServer::new(floor.ids(), m, 0.95).unwrap();
        (MonitoringSession::new(server, policy), floor)
    }

    #[test]
    fn quiet_floor_never_escalates() {
        let (mut session, mut floor) = session(200, 5, SessionPolicy::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..15 {
            let event = session.tick(&mut floor, &mut rng).unwrap();
            assert!(!event.is_alarm());
        }
        assert_eq!(session.log().len(), 15);
        assert!(session
            .log()
            .iter()
            .all(|e| matches!(e, SessionEvent::Checked(_))));
    }

    #[test]
    fn persistent_theft_escalates_and_names_the_tags() {
        let (mut session, mut floor) = session(300, 5, SessionPolicy::default());
        let mut rng = StdRng::seed_from_u64(2);

        // Warm-up tick, then the theft.
        session.tick(&mut floor, &mut rng).unwrap();
        let stolen = floor.remove_random(8, &mut rng).unwrap();
        let mut stolen_ids: Vec<TagId> = stolen.iter().map(|t| t.id()).collect();
        stolen_ids.sort_unstable();

        // Tick until escalation (2 consecutive alarms at default policy;
        // each alarming tick has prob > 0.95, so a handful of ticks
        // suffice deterministically under this seed).
        let mut escalated = None;
        for _ in 0..10 {
            session.tick(&mut floor, &mut rng).unwrap();
            if let Some(SessionEvent::Escalated { missing, .. }) = session.log().last() {
                escalated = Some(missing.clone());
                break;
            }
        }
        let missing = escalated.expect("escalation never happened");
        assert_eq!(missing, stolen_ids);
    }

    #[test]
    fn transient_blocking_rides_out_below_threshold() {
        let policy = SessionPolicy {
            alarms_to_escalate: 3,
            ..SessionPolicy::default()
        };
        let (mut session, mut floor) = session(200, 5, policy);
        let mut rng = StdRng::seed_from_u64(3);
        let ids = floor.ids();

        // One tick with a blocked tag (may alarm), then unblock.
        floor.get_mut(ids[0]).unwrap().set_detuned(true);
        session.tick(&mut floor, &mut rng).unwrap();
        floor.get_mut(ids[0]).unwrap().set_detuned(false);

        // Healthy ticks reset the counter; no escalation ever fires.
        for _ in 0..5 {
            session.tick(&mut floor, &mut rng).unwrap();
        }
        assert_eq!(session.consecutive_alarms(), 0);
        assert!(session
            .log()
            .iter()
            .all(|e| matches!(e, SessionEvent::Checked(_))));
    }

    #[test]
    fn utrp_sessions_maintain_the_counter_mirror() {
        let policy = SessionPolicy {
            protocol: TickProtocol::Utrp,
            ..SessionPolicy::default()
        };
        let (mut session, mut floor) = session(100, 3, policy);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let event = session.tick(&mut floor, &mut rng).unwrap();
            assert!(!event.is_alarm());
        }
        // Mirror still exact.
        for tag in floor.iter() {
            assert_eq!(
                session.server().counter_of(tag.id()).unwrap(),
                tag.counter()
            );
        }
    }

    #[test]
    fn escalation_resets_the_alarm_counter() {
        let policy = SessionPolicy {
            alarms_to_escalate: 1,
            ..SessionPolicy::default()
        };
        let (mut session, mut floor) = session(150, 2, policy);
        let mut rng = StdRng::seed_from_u64(5);
        floor.remove_random(5, &mut rng).unwrap();
        session.tick(&mut floor, &mut rng).unwrap();
        assert!(matches!(
            session.log().last(),
            Some(SessionEvent::Escalated { .. })
        ));
        assert_eq!(session.consecutive_alarms(), 0);
    }
}
