//! # tagwatch-analytics
//!
//! The experiment harness behind the reproduction of the paper's
//! evaluation (§6):
//!
//! * [`montecarlo`] — single-trial bodies for each experiment (TRP
//!   detection, UTRP-vs-colluders detection, collect-all cost, false
//!   alarms).
//! * [`experiments`] — the full figure sweeps (Figs. 4–7) over the
//!   paper's `n`/`m` grid, with per-trial seed derivation so results
//!   are independent of thread count and machine.
//! * [`parallel`] — deterministic multi-core fan-out.
//! * [`pool`] — the persistent sharded round engine: worker-owned
//!   active-array shards behind parked threads, bit-identical to the
//!   scalar engine at every thread count.
//! * [`stats`] — summaries and Wilson intervals for detection rates.
//! * [`report`] — aligned tables, CSV, and spark-line rendering used by
//!   the `fig4`…`fig7` binaries in `tagwatch-bench`.
//! * [`policy`] — declarative per-site monitoring policy: the
//!   versioned `tagwatch-policy v1` text document (thresholds, audit
//!   budgets, desync windows, escalation actions) that the session
//!   interprets.
//! * [`session`] — the operational layer: continuous monitoring with
//!   alarm-threshold escalation to missing-tag identification,
//!   interpreting a [`Policy`].
//! * [`soak`] — long-horizon soak runs: thousands of session ticks
//!   against a Markov-evolving channel with scripted incident bursts,
//!   invariant checks after every tick, and a deterministic JSON
//!   report for CI regression tracking.
//! * [`durable`] — crash-safe soak twins: every tick journaled to a
//!   `tagwatch-store` write-ahead log with periodic checkpoints, so a
//!   run killed at any tick resumes to a byte-identical report, and
//!   corrupted WAL tails are excised with an attributable trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod durable;
pub mod experiments;
pub mod histogram;
pub mod montecarlo;
pub mod parallel;
pub mod policy;
pub mod pool;
pub mod report;
pub mod scan;
pub mod session;
pub mod soak;
pub mod stats;

pub use durable::{
    resume_soak_durable, resume_soak_durable_observed, run_soak_durable, run_soak_durable_observed,
    DurableConfig, DurableError, DurableOutcome, ResumeOutcome,
};
pub use experiments::{
    budget_sweep, fig4, fig4_time, fig5, fig6, fig7, pad_ablation, BudgetSweepRow, Fig4Row,
    Fig4TimeRow, Fig5Row, Fig6Row, Fig7Row, PadAblationRow, SweepConfig,
};
pub use histogram::{percentile, Histogram};
pub use montecarlo::{
    collect_all_slots_trial, trp_detection_trial, trp_false_alarm_trial, utrp_detection_cell,
    utrp_detection_trial,
};
pub use parallel::{parallel_count, parallel_map, worker_threads};
pub use policy::{EscalateAction, Policy, PolicyAction, PolicyError, POLICY_HEADER};
pub use pool::{PooledEngine, POOL_THRESHOLD};
pub use report::{sparkline, Table};
pub use scan::{
    chunked_min_scan, chunked_min_scan_counting, parallel_min_scan, run_round_chunked_observed,
    run_round_parallel, run_round_parallel_observed,
};
pub use session::{
    MonitoringSession, SessionBuilder, SessionEvent, SessionLadderState, TickProtocol,
};
pub use soak::{
    run_soak, run_soak_observed, run_soak_observed_threads, run_soak_policy,
    run_soak_policy_observed, run_soak_policy_observed_threads, SoakConfig, SoakCounts, SoakReport,
};
pub use stats::{Proportion, Summary};
