//! Full figure sweeps (paper §6, Figures 4–7).
//!
//! Each `figN` function reproduces one figure's data: the same `n` grid
//! (100…2000 step 100), tolerance panels `m ∈ {5, 10, 20, 30}`,
//! `α = 0.95`, adversary stealing exactly `m + 1` tags, and (for the
//! accuracy figures) Monte-Carlo averaging — the paper uses 1000 trials,
//! configurable here. Trials parallelize across cores with per-trial
//! seeds derived from the sweep seed, so results are machine- and
//! thread-count-independent.

use tagwatch_core::{trp_frame_size, utrp_frame_size, CoreError, MonitorParams, UtrpSizing};
use tagwatch_sim::SeedSequence;

use crate::montecarlo::{collect_all_slots_trial, trp_detection_trial, utrp_detection_cell};
use crate::parallel::parallel_count;
use crate::stats::{Proportion, Summary};

/// Parameters shared by every figure sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Population sizes to sweep.
    pub n_values: Vec<u64>,
    /// Tolerance panels.
    pub m_values: Vec<u64>,
    /// Confidence level `α`.
    pub alpha: f64,
    /// Monte-Carlo trials per (n, m) cell for the accuracy figures.
    pub trials: u64,
    /// Trials per cell for collect-all cost averaging (cheaper spread,
    /// so fewer are needed).
    pub collect_trials: u64,
    /// Colluders' sync budget `c` (Figs. 6–7).
    pub sync_budget: u64,
    /// Root seed for per-trial derivation.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's exact evaluation grid (§6): `n = 100…2000` step 100,
    /// `m ∈ {5, 10, 20, 30}`, `α = 0.95`, 1000 trials, `c = 20`.
    #[must_use]
    pub fn paper() -> Self {
        SweepConfig {
            n_values: (1..=20).map(|k| k * 100).collect(),
            m_values: vec![5, 10, 20, 30],
            alpha: 0.95,
            trials: 1000,
            collect_trials: 25,
            sync_budget: 20,
            seed: 0x7467_7761,
        }
    }

    /// A reduced grid for CI and benches: four population sizes, 100
    /// trials.
    #[must_use]
    pub fn quick() -> Self {
        SweepConfig {
            n_values: vec![100, 500, 1000, 2000],
            m_values: vec![5, 10, 20, 30],
            alpha: 0.95,
            trials: 100,
            collect_trials: 5,
            sync_budget: 20,
            seed: 0x7467_7761,
        }
    }

    /// Scales trial counts by the `TAGWATCH_TRIALS` environment variable
    /// if set (the figure binaries honour this for fast smoke runs).
    #[must_use]
    pub fn with_env_overrides(mut self) -> Self {
        if let Ok(t) = std::env::var("TAGWATCH_TRIALS") {
            if let Ok(t) = t.parse::<u64>() {
                self.trials = t.max(1);
                self.collect_trials = (t / 10).clamp(1, self.collect_trials.max(1));
            }
        }
        self
    }

    fn cell_seeds(&self, figure: u64, m: u64, n: u64) -> SeedSequence {
        SeedSequence::new(self.seed).child(figure).child(m).child(n)
    }
}

/// One point of Fig. 4: slots used by collect-all vs TRP.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Tolerance panel.
    pub m: u64,
    /// Population size.
    pub n: u64,
    /// Collect-all slot cost (mean over trials).
    pub collect_all_slots: Summary,
    /// TRP frame size from Eq. 2 (deterministic).
    pub trp_slots: u64,
}

/// Fig. 4: collect-all vs TRP scanning cost.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn fig4(config: &SweepConfig) -> Result<Vec<Fig4Row>, CoreError> {
    let mut rows = Vec::new();
    for &m in &config.m_values {
        for &n in &config.n_values {
            let params = MonitorParams::new(n, m, config.alpha)?;
            let trp_slots = trp_frame_size(&params)?.get();
            let seeds = config.cell_seeds(4, m, n);
            let samples: Vec<f64> = crate::parallel::parallel_map(config.collect_trials, |t| {
                collect_all_slots_trial(n, m, seeds.seed_for(t)) as f64
            });
            rows.push(Fig4Row {
                m,
                n,
                collect_all_slots: Summary::from_samples(&samples),
                trp_slots,
            });
        }
    }
    Ok(rows)
}

/// One point of Fig. 5: TRP detection probability when `m + 1` tags are
/// stolen.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Tolerance panel.
    pub m: u64,
    /// Population size.
    pub n: u64,
    /// The Eq. 2 frame size used.
    pub frame: u64,
    /// Measured detection proportion.
    pub detection: Proportion,
}

/// Fig. 5: TRP accuracy at the Eq. 2 frame size, adversary steals
/// `m + 1`.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn fig5(config: &SweepConfig) -> Result<Vec<Fig5Row>, CoreError> {
    let mut rows = Vec::new();
    for &m in &config.m_values {
        for &n in &config.n_values {
            let params = MonitorParams::new(n, m, config.alpha)?;
            let f = trp_frame_size(&params)?;
            let seeds = config.cell_seeds(5, m, n);
            let detected = parallel_count(config.trials, |t| {
                trp_detection_trial(n, m, f, seeds.seed_for(t))
            });
            rows.push(Fig5Row {
                m,
                n,
                frame: f.get(),
                detection: Proportion::new(detected, config.trials),
            });
        }
    }
    Ok(rows)
}

/// One point of Fig. 6: TRP vs UTRP frame sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Tolerance panel.
    pub m: u64,
    /// Population size.
    pub n: u64,
    /// Eq. 2 frame size.
    pub trp_slots: u64,
    /// Eq. 3 frame size (with the paper's small safety pad).
    pub utrp_slots: u64,
}

/// Fig. 6: the slot overhead of collusion resistance, `c = 20`.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn fig6(config: &SweepConfig) -> Result<Vec<Fig6Row>, CoreError> {
    let sizing = UtrpSizing {
        sync_budget: config.sync_budget,
        safety_pad: 8,
    };
    let mut rows = Vec::new();
    for &m in &config.m_values {
        for &n in &config.n_values {
            let params = MonitorParams::new(n, m, config.alpha)?;
            rows.push(Fig6Row {
                m,
                n,
                trp_slots: trp_frame_size(&params)?.get(),
                utrp_slots: utrp_frame_size(&params, sizing)?.get(),
            });
        }
    }
    Ok(rows)
}

/// One point of Fig. 7: UTRP detection probability under the
/// best-strategy collusion attack.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Tolerance panel.
    pub m: u64,
    /// Population size.
    pub n: u64,
    /// The Eq. 3 frame size used.
    pub frame: u64,
    /// Measured detection proportion against the colluders.
    pub detection: Proportion,
}

/// Fig. 7: UTRP accuracy against colluding readers, `c = 20`.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn fig7(config: &SweepConfig) -> Result<Vec<Fig7Row>, CoreError> {
    let sizing = UtrpSizing {
        sync_budget: config.sync_budget,
        safety_pad: 8,
    };
    let mut rows = Vec::new();
    for &m in &config.m_values {
        for &n in &config.n_values {
            let params = MonitorParams::new(n, m, config.alpha)?;
            let f = utrp_frame_size(&params, sizing)?;
            let seeds = config.cell_seeds(7, m, n);
            let detected = utrp_detection_cell(n, m, f, config.sync_budget, config.trials, seeds);
            rows.push(Fig7Row {
                m,
                n,
                frame: f.get(),
                detection: Proportion::new(detected, config.trials),
            });
        }
    }
    Ok(rows)
}

/// One point of the time-domain companion to Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4TimeRow {
    /// Tolerance panel.
    pub m: u64,
    /// Population size.
    pub n: u64,
    /// Collect-all air time under the Gen2 model, microseconds (mean).
    pub collect_all_micros: Summary,
    /// TRP air time under the Gen2 model, microseconds.
    pub trp_micros: u64,
}

/// The paper's Fig. 4 footnote, quantified: "the actual performance of
/// collect all will be worse since the tag needs to return its ID
/// rather than a shorter random number". Same sweep as Fig. 4 but in
/// *air time* under the Gen2-style timing model, where an ID slot is 6×
/// a presence slot.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn fig4_time(config: &SweepConfig) -> Result<Vec<Fig4TimeRow>, CoreError> {
    use rand::SeedableRng;
    use tagwatch_protocols::collect_all::{collect_all, CollectAllConfig};
    use tagwatch_sim::{Channel, Reader, ReaderConfig, TagPopulation, TimingModel};

    let timing = TimingModel::gen2();
    let mut rows = Vec::new();
    for &m in &config.m_values {
        for &n in &config.n_values {
            let params = MonitorParams::new(n, m, config.alpha)?;
            let f = trp_frame_size(&params)?;
            // TRP time: announce + per-slot broadcast + outcome bodies.
            // Expected occupied slots: f·(1 − e^{−n/f}).
            let occupied =
                (f.get() as f64 * (1.0 - (-(n as f64) / f.get() as f64).exp())).round() as u64;
            let empty = f.get() - occupied;
            let trp_micros = (timing.frame_announce
                + timing.slot_broadcast * f.get()
                + timing.presence_reply * occupied
                + timing.empty_slot * empty)
                .as_micros();

            let seeds = config.cell_seeds(40, m, n);
            let samples: Vec<f64> = crate::parallel::parallel_map(config.collect_trials, |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seeds.seed_for(t));
                let mut reader = Reader::new(ReaderConfig {
                    timing,
                    ..ReaderConfig::default()
                });
                let mut pop = TagPopulation::with_sequential_ids(n as usize);
                let run = collect_all(
                    &mut reader,
                    &mut pop,
                    &Channel::ideal(),
                    &CollectAllConfig::paper(n, m),
                    &mut rng,
                )
                // lint:allow(s2-panic): CollectAllConfig::paper(n, m) is valid whenever MonitorParams::new(n, m, alpha) succeeded above, and a Result cannot cross the parallel_map closure boundary
                .expect("valid config");
                run.duration.as_micros() as f64
            });
            rows.push(Fig4TimeRow {
                m,
                n,
                collect_all_micros: Summary::from_samples(&samples),
                trp_micros,
            });
        }
    }
    Ok(rows)
}

/// One point of the safety-pad ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PadAblationRow {
    /// Pad added to the Eq. 3 minimum.
    pub pad: u64,
    /// Population size.
    pub n: u64,
    /// Resulting frame size.
    pub frame: u64,
    /// Measured detection against the best-strategy colluders.
    pub detection: Proportion,
}

/// Ablation: how much does the paper's "+5–10 slot" safety pad on the
/// Eq. 3 frame actually buy? Measured detection at pads 0–16, fixed
/// `m = 10`, `c = 20`, over the configured `n` grid.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn pad_ablation(config: &SweepConfig) -> Result<Vec<PadAblationRow>, CoreError> {
    let m = 10u64;
    let mut rows = Vec::new();
    for &pad in &[0u64, 4, 8, 16] {
        for &n in &config.n_values {
            let params = MonitorParams::new(n, m, config.alpha)?;
            let sizing = UtrpSizing {
                sync_budget: config.sync_budget,
                safety_pad: pad,
            };
            let f = utrp_frame_size(&params, sizing)?;
            let seeds = config.cell_seeds(100 + pad, m, n);
            let detected = utrp_detection_cell(n, m, f, config.sync_budget, config.trials, seeds);
            rows.push(PadAblationRow {
                pad,
                n,
                frame: f.get(),
                detection: Proportion::new(detected, config.trials),
            });
        }
    }
    Ok(rows)
}

/// One point of the attacker-budget sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSweepRow {
    /// The attacker's actual sync budget.
    pub attacker_budget: u64,
    /// Population size.
    pub n: u64,
    /// The frame (sized for the *design* budget `c = 20`).
    pub frame: u64,
    /// Measured detection.
    pub detection: Proportion,
}

/// Ablation: the frame is sized for `c = 20`; what happens when the
/// real attacker has more (a faster side channel than the deadline
/// model assumed) or less? Fixed `m = 10`.
///
/// # Errors
///
/// Returns [`CoreError`] when the grid holds an invalid `(n, m, α)`
/// combination or a cell's frame-size search is infeasible.
pub fn budget_sweep(config: &SweepConfig) -> Result<Vec<BudgetSweepRow>, CoreError> {
    let m = 10u64;
    let mut rows = Vec::new();
    for &n in &config.n_values {
        let params = MonitorParams::new(n, m, config.alpha)?;
        let sizing = UtrpSizing {
            sync_budget: config.sync_budget,
            safety_pad: 8,
        };
        let f = utrp_frame_size(&params, sizing)?;
        for &budget in &[0u64, 10, 20, 40, 80, 160] {
            let seeds = config.cell_seeds(200 + budget, m, n);
            let detected = utrp_detection_cell(n, m, f, budget, config.trials, seeds);
            rows.push(BudgetSweepRow {
                attacker_budget: budget,
                n,
                frame: f.get(),
                detection: Proportion::new(detected, config.trials),
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            n_values: vec![100, 300],
            m_values: vec![5, 10],
            alpha: 0.95,
            trials: 200,
            collect_trials: 3,
            sync_budget: 20,
            seed: 1,
        }
    }

    #[test]
    fn fig4_shapes_hold_on_tiny_grid() {
        let rows = fig4(&tiny()).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // TRP must beat collect-all everywhere on the paper's grid.
            assert!(
                (row.trp_slots as f64) < row.collect_all_slots.mean,
                "m={} n={}: trp {} vs collect {}",
                row.m,
                row.n,
                row.trp_slots,
                row.collect_all_slots.mean
            );
        }
        // Larger tolerance shrinks TRP frames for equal n.
        let trp_at = |m: u64, n: u64| {
            rows.iter()
                .find(|r| r.m == m && r.n == n)
                .unwrap()
                .trp_slots
        };
        assert!(trp_at(10, 300) < trp_at(5, 300));
    }

    #[test]
    fn fig5_detection_stays_near_alpha() {
        let rows = fig5(&tiny()).unwrap();
        for row in &rows {
            let (lo, _) = row.detection.wilson_interval(1.96);
            assert!(
                lo > 0.85,
                "m={} n={}: detection {} CI floor {lo}",
                row.m,
                row.n,
                row.detection.rate()
            );
        }
    }

    #[test]
    fn fig6_overhead_is_small_and_nonnegative() {
        let rows = fig6(&tiny()).unwrap();
        for row in &rows {
            assert!(row.utrp_slots >= row.trp_slots, "m={} n={}", row.m, row.n);
            assert!(
                row.utrp_slots < row.trp_slots * 2 + 300,
                "m={} n={}: overhead too large ({} vs {})",
                row.m,
                row.n,
                row.utrp_slots,
                row.trp_slots
            );
        }
    }

    #[test]
    fn fig7_detection_stays_near_alpha() {
        let rows = fig7(&tiny()).unwrap();
        for row in &rows {
            let (lo, _) = row.detection.wilson_interval(1.96);
            assert!(
                lo > 0.85,
                "m={} n={}: detection {} CI floor {lo}",
                row.m,
                row.n,
                row.detection.rate()
            );
        }
    }

    #[test]
    fn sweeps_are_reproducible() {
        let a = fig5(&tiny()).unwrap();
        let b = fig5(&tiny()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_config_matches_the_evaluation_grid() {
        let cfg = SweepConfig::paper();
        assert_eq!(cfg.n_values.len(), 20);
        assert_eq!(cfg.n_values[0], 100);
        assert_eq!(*cfg.n_values.last().unwrap(), 2000);
        assert_eq!(cfg.m_values, vec![5, 10, 20, 30]);
        assert_eq!(cfg.trials, 1000);
        assert_eq!(cfg.sync_budget, 20);
    }

    #[test]
    fn fig4_time_amplifies_the_slot_gap() {
        let mut cfg = tiny();
        cfg.n_values = vec![300];
        cfg.m_values = vec![10];
        let slot_rows = fig4(&cfg).unwrap();
        let time_rows = fig4_time(&cfg).unwrap();
        let slot_ratio = slot_rows[0].trp_slots as f64 / slot_rows[0].collect_all_slots.mean;
        let time_ratio = time_rows[0].trp_micros as f64 / time_rows[0].collect_all_micros.mean;
        // The paper's footnote: in time, collect-all loses even harder
        // than in slots (IDs are 6x presence bursts in the Gen2 model).
        assert!(
            time_ratio < slot_ratio,
            "time ratio {time_ratio} should beat slot ratio {slot_ratio}"
        );
        assert!(time_rows[0].trp_micros > 0);
    }

    #[test]
    fn pad_ablation_pads_never_hurt() {
        let mut cfg = tiny();
        cfg.n_values = vec![300];
        cfg.m_values = vec![10];
        let rows = pad_ablation(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        let at = |pad: u64| rows.iter().find(|r| r.pad == pad).unwrap();
        // Bigger pads → bigger frames → detection does not degrade
        // (allow Monte-Carlo slack).
        assert!(at(16).frame > at(0).frame);
        assert!(at(16).detection.rate() + 0.05 >= at(0).detection.rate());
    }

    #[test]
    fn budget_sweep_shows_graceful_degradation() {
        let mut cfg = tiny();
        cfg.n_values = vec![300];
        let rows = budget_sweep(&cfg).unwrap();
        let at = |c: u64| rows.iter().find(|r| r.attacker_budget == c).unwrap();
        // An attacker far over the design budget evades more often than
        // one at the design point.
        assert!(
            at(160).detection.rate() < at(20).detection.rate() + 0.02,
            "over-budget attacker should not be easier to catch: {} vs {}",
            at(160).detection.rate(),
            at(20).detection.rate()
        );
        // Everyone shares the same frame (sized for c = 20).
        assert!(rows.iter().all(|r| r.frame == at(20).frame));
    }

    #[test]
    fn env_override_scales_trials() {
        // Note: set/remove env var carefully — tests run in threads, so
        // use a unique name access pattern guarded by a lock-free
        // single-use variable.
        std::env::set_var("TAGWATCH_TRIALS", "7");
        let cfg = SweepConfig::quick().with_env_overrides();
        std::env::remove_var("TAGWATCH_TRIALS");
        assert_eq!(cfg.trials, 7);
    }
}
