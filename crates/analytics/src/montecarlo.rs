//! Single-trial experiment bodies.
//!
//! Each function here is one Monte-Carlo trial of one experiment from
//! the paper's evaluation (§6), written against the *fast paths* of the
//! protocol crates so that thousand-trial sweeps finish in seconds. The
//! reference (device-state-machine) paths are exercised by the test
//! suites; the fast and reference paths are tested to agree.
//!
//! All trials are pure functions of their numeric inputs plus a seed:
//! no globals, no wall clock, no thread-dependent state.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tagwatch_attack::colluder::{collude_utrp, ColluderConfig};
use tagwatch_core::trp::{observed_bitstring, verify, TrpChallenge};
use tagwatch_core::utrp::{expected_round, UtrpChallenge};
use tagwatch_core::Verdict;
use tagwatch_protocols::collect_all::{collect_all, CollectAllConfig};
use tagwatch_sim::{
    Channel, Counter, FrameSize, Reader, ReaderConfig, SimDuration, TagId, TagPopulation,
    TimingModel,
};

/// One TRP detection trial (Fig. 5 body): steal exactly `m + 1` of `n`
/// tags, run one frame of size `f`, and report whether the server
/// noticed.
///
/// # Panics
///
/// Panics on invalid geometry (`m + 1 > n`) — experiment configs are
/// validated upstream.
#[must_use]
pub fn trp_detection_trial(n: u64, m: u64, f: FrameSize, seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pop = TagPopulation::with_sequential_ids(n as usize);
    let all_ids = pop.ids();
    pop.remove_random((m + 1) as usize, &mut rng)
        // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
        .expect("m + 1 <= n validated upstream");
    let challenge = TrpChallenge::generate(f, &mut rng);
    let observed = observed_bitstring(&pop.ids(), &challenge);
    // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
    let report = verify(&all_ids, challenge, &observed).expect("shapes match by construction");
    report.verdict == Verdict::NotIntact
}

/// One UTRP detection trial (Fig. 7 body): the dishonest reader splits
/// off `m + 1` tags to an accomplice, runs the best-strategy collusion
/// with sync budget `c`, and returns whether the server's comparison
/// (bitstring match + deadline) caught it.
///
/// # Panics
///
/// Panics on invalid geometry (`m + 1 >= n`).
#[must_use]
pub fn utrp_detection_trial(n: u64, m: u64, f: FrameSize, c: u64, seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let timing = TimingModel::gen2();
    let challenge = UtrpChallenge::generate(f, &timing, &mut rng);

    let mut s1 = TagPopulation::with_sequential_ids(n as usize);
    let mut s2 = s1
        .split_random((m + 1) as usize, &mut rng)
        // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
        .expect("m + 1 < n validated upstream");

    let config = ColluderConfig {
        sync_budget: c,
        // A fast side channel: the most favourable case for the
        // adversary, per the paper's analysis setup.
        tcomm: SimDuration::from_micros(1),
    };
    let outcome = collude_utrp(&mut s1, &mut s2, &challenge, &config, &timing)
        // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
        .expect("committed nonce sequence covers the frame");

    let registry: Vec<(TagId, Counter)> =
        (1..=n).map(|i| (TagId::from(i), Counter::ZERO)).collect();
    // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
    let expected = expected_round(&registry, &challenge).expect("sequence covers frame");

    let mismatch = expected.bitstring != outcome.response.bitstring;
    let late = !challenge.timer().accepts(outcome.response.elapsed);
    mismatch || late
}

/// Trials sharing one challenge in [`utrp_detection_cell`]. The
/// challenge (nonce sequence) and the server's expected round depend
/// only on the registry, so recomputing them per trial would double the
/// sweep cost for no statistical gain — trial randomness comes from
/// *which* tags are stolen.
const UTRP_CELL_CHUNK: u64 = 25;

/// A full Fig. 7 cell: `trials` UTRP detection trials at one `(n, m)`
/// point, chunked so that each group of 25 trials shares a challenge
/// and one expected-round computation. Returns the number of
/// detections.
#[must_use]
pub fn utrp_detection_cell(
    n: u64,
    m: u64,
    f: FrameSize,
    c: u64,
    trials: u64,
    seeds: tagwatch_sim::SeedSequence,
) -> u64 {
    let chunks = trials.div_ceil(UTRP_CELL_CHUNK);
    let timing = TimingModel::gen2();
    let registry: Vec<(TagId, Counter)> =
        (1..=n).map(|i| (TagId::from(i), Counter::ZERO)).collect();
    crate::parallel::parallel_map(chunks, |chunk| {
        let chunk_trials = UTRP_CELL_CHUNK.min(trials - chunk * UTRP_CELL_CHUNK);
        let chunk_seeds = seeds.child(chunk);
        let mut rng = chunk_seeds.rng_for(0);
        let challenge = UtrpChallenge::generate(f, &timing, &mut rng);
        // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
        let expected = expected_round(&registry, &challenge).expect("sequence covers frame");
        let mut detected = 0u64;
        for t in 0..chunk_trials {
            let mut trial_rng = chunk_seeds.rng_for(t + 1);
            let mut s1 = TagPopulation::with_sequential_ids(n as usize);
            let mut s2 = s1
                .split_random((m + 1) as usize, &mut trial_rng)
                // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
                .expect("m + 1 < n validated upstream");
            let config = ColluderConfig {
                sync_budget: c,
                tcomm: SimDuration::from_micros(1),
            };
            let outcome = collude_utrp(&mut s1, &mut s2, &challenge, &config, &timing)
                // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
                .expect("sequence covers frame");
            let mismatch = expected.bitstring != outcome.response.bitstring;
            let late = !challenge.timer().accepts(outcome.response.elapsed);
            if mismatch || late {
                detected += 1;
            }
        }
        detected
    })
    .into_iter()
    .sum()
}

/// One collect-all cost trial (Fig. 4 body): slots to inventory
/// `n − m` of `n` present tags under the Lee-optimal DFSA policy.
#[must_use]
pub fn collect_all_slots_trial(n: u64, m: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reader = Reader::new(ReaderConfig::default());
    let mut pop = TagPopulation::with_sequential_ids(n as usize);
    let run = collect_all(
        &mut reader,
        &mut pop,
        &Channel::ideal(),
        &CollectAllConfig::paper(n, m),
        &mut rng,
    )
    // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
    .expect("valid configuration");
    debug_assert!(!run.truncated);
    run.total_slots
}

/// One TRP *false-alarm* trial: the set is intact (≤ `m` tags detuned,
/// none missing); does the server wrongly alarm? Exercises the
/// tolerance semantics the introduction motivates (scratched/blocked
/// tags should not page anybody when `missing ≤ m` — though TRP's
/// bit-exact comparison does alarm on any detuned tag, which is the
/// documented conservative behaviour this trial measures).
#[must_use]
pub fn trp_false_alarm_trial(n: u64, detuned: u64, f: FrameSize, seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pop = TagPopulation::with_sequential_ids(n as usize);
    let all_ids = pop.ids();
    pop.detune_random(detuned as usize, &mut rng)
        // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
        .expect("detuned <= n validated upstream");
    let challenge = TrpChallenge::generate(f, &mut rng);
    // Detuned tags are present but silent: observed = tuned tags only.
    let audible: Vec<TagId> = pop
        .iter()
        .filter(|t| !t.is_detuned())
        .map(|t| t.id())
        .collect();
    let observed = observed_bitstring(&audible, &challenge);
    // lint:allow(s2-panic): documented `# Panics` contract; geometry is validated by the sweep grid before trials spawn, and a Result cannot cross the parallel trial closure
    let report = verify(&all_ids, challenge, &observed).expect("shapes match");
    report.verdict == Verdict::NotIntact
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_core::{trp_frame_size, utrp_frame_size, MonitorParams, UtrpSizing};

    #[test]
    fn trp_trial_is_deterministic_per_seed() {
        let f = FrameSize::new(300).unwrap();
        assert_eq!(
            trp_detection_trial(200, 5, f, 9),
            trp_detection_trial(200, 5, f, 9)
        );
    }

    #[test]
    fn trp_trials_detect_at_the_designed_rate() {
        let params = MonitorParams::new(200, 5, 0.95).unwrap();
        let f = trp_frame_size(&params).unwrap();
        let detected = (0..300)
            .filter(|&s| trp_detection_trial(200, 5, f, s))
            .count();
        let rate = detected as f64 / 300.0;
        assert!(rate > 0.90, "rate {rate}");
    }

    #[test]
    fn trp_trials_miss_with_tiny_frames() {
        // A 4-slot frame over 200 tags detects almost nothing.
        let f = FrameSize::new(4).unwrap();
        let detected = (0..100)
            .filter(|&s| trp_detection_trial(200, 5, f, s))
            .count();
        assert!(detected < 30, "detected {detected} with a 4-slot frame");
    }

    #[test]
    fn utrp_trial_is_deterministic_per_seed() {
        let f = FrameSize::new(250).unwrap();
        assert_eq!(
            utrp_detection_trial(100, 5, f, 20, 3),
            utrp_detection_trial(100, 5, f, 20, 3)
        );
    }

    #[test]
    fn utrp_trials_detect_at_the_designed_rate() {
        let params = MonitorParams::new(150, 5, 0.95).unwrap();
        let f = utrp_frame_size(&params, UtrpSizing::default()).unwrap();
        let detected = (0..200)
            .filter(|&s| utrp_detection_trial(150, 5, f, 20, s))
            .count();
        let rate = detected as f64 / 200.0;
        assert!(rate > 0.90, "rate {rate}");
    }

    #[test]
    fn collect_all_trial_costs_scale_with_n() {
        let small = collect_all_slots_trial(100, 0, 1);
        let large = collect_all_slots_trial(400, 0, 1);
        assert!(large > 2 * small, "{large} vs {small}");
    }

    #[test]
    fn false_alarm_trial_with_no_detuned_tags_never_alarms() {
        let f = FrameSize::new(400).unwrap();
        assert!((0..50).all(|s| !trp_false_alarm_trial(200, 0, f, s)));
    }

    #[test]
    fn false_alarm_trial_with_detuned_tags_usually_alarms() {
        // TRP's comparison is bit-exact: a silent-but-present tag looks
        // stolen. This is the conservative fail-safe the crate documents.
        let f = FrameSize::new(800).unwrap();
        let alarms = (0..50)
            .filter(|&s| trp_false_alarm_trial(200, 5, f, s))
            .count();
        assert!(alarms > 40, "alarms {alarms}");
    }
}
