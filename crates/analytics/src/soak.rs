//! Long-horizon soak testing of the monitoring session.
//!
//! A soak run drives a [`MonitoringSession`] for thousands of ticks
//! against a randomly evolving channel (a [`MarkovChannel`] over
//! calm/degraded/storm levels) with periodic scripted incidents —
//! counter-desync bursts, response truncations ("crashes"), and thefts
//! — while an in-loop *operator* performs the physical audits the
//! session requests (counter resyncs, quarantine releases, recovery of
//! stolen tags after identification names them).
//!
//! After **every tick** the driver checks three global invariants:
//!
//! 1. **No silent false "intact"** — an above-tolerance theft is
//!    detected (escalation names *exactly* the stolen tags, with no
//!    unresolved stragglers) within
//!    [`SoakConfig::detection_deadline`] ticks, and an intact verdict
//!    never coexists with residual slot mismatches.
//! 2. **Quarantine converges** — only scripted burst victims or
//!    once-stolen tags are ever quarantined, and the operator's
//!    audit/release loop always drains the quarantine set by the end
//!    of the run.
//! 3. **Bounded audit frequency** — every physical audit is
//!    attributable to an incident (an active theft, a scripted burst
//!    or crash, or a non-calm channel level) within
//!    [`SoakConfig::attribution_window`] ticks; calm, incident-free
//!    operation never pages the operator.
//!
//! The run is fully deterministic in [`SoakConfig::seed`]: channel
//! evolution, incident scheduling, and protocol randomness draw from
//! disjoint [`SeedSequence`] streams, so the per-tick event log (and
//! its FNV-1a digest, and the JSON report) are byte-identical across
//! runs and machines. The report feeds CI regression tracking of
//! recovery-latency and audit-frequency distributions.

use rand::rngs::StdRng;

use tagwatch_core::utrp::attributed_round;
use tagwatch_core::{
    CoreError, MonitorServer, RegistrySnapshot, RoundExecutor, ServerConfig, StateCapture,
    StateRestore, Verdict,
};
use tagwatch_obs::{fnv1a_lines, json_escape, json_f64, FlightDump, Obs, ObsEvent, VerdictKind};
use tagwatch_sim::{Counter, FaultPlan, MarkovChannel, SeedSequence, Tag, TagId, TagPopulation};
use tagwatch_store::checkpoint::CheckpointDoc;
use tagwatch_store::StoreError;

use crate::histogram::{percentile, Histogram};
use crate::policy::Policy;
use crate::session::{MonitoringSession, SessionEvent, SessionLadderState, TickProtocol};

/// Parameters of one soak run. All randomness derives from `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakConfig {
    /// Root seed: two runs with equal configs are byte-identical.
    pub seed: u64,
    /// Number of monitoring ticks to drive.
    pub ticks: u64,
    /// Registered population size.
    pub n: usize,
    /// Missing-tag tolerance `m`.
    pub m: u64,
    /// Required detection confidence `α`.
    pub alpha: f64,
    /// Protocol for routine ticks. Desync bursts are only scripted for
    /// [`TickProtocol::Utrp`] (TRP has no counters to desynchronize).
    pub protocol: TickProtocol,
    /// Ticks between scripted fault bursts (0 disables bursts).
    pub burst_period: u64,
    /// Ticks between scripted thefts (0 disables thefts).
    pub theft_period: u64,
    /// Tags stolen per theft; must exceed `m` so detection is owed.
    pub theft_size: usize,
    /// Invariant 1 bound: ticks within which a theft must be named.
    pub detection_deadline: u64,
    /// Server-side desync diagnosis window (must cover one round's
    /// announcement advance, roughly `n + 1`, for crash recovery).
    pub desync_window: u64,
    /// Invariant 3 bound: how many ticks after an incident (or a
    /// non-calm channel level) an audit remains attributable to it.
    pub attribution_window: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 1,
            ticks: 2000,
            n: 60,
            m: 2,
            alpha: 0.95,
            protocol: TickProtocol::Utrp,
            burst_period: 40,
            theft_period: 250,
            theft_size: 3,
            detection_deadline: 20,
            desync_window: 96,
            attribution_window: 5,
        }
    }
}

impl SoakConfig {
    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        if self.ticks == 0 {
            return Err(CoreError::InvalidParams {
                reason: "soak needs at least one tick".into(),
            });
        }
        if self.theft_period > 0 && self.theft_size as u64 <= self.m {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "theft_size {} must exceed tolerance m={} for detection to be owed",
                    self.theft_size, self.m
                ),
            });
        }
        if self.theft_size >= self.n {
            return Err(CoreError::InvalidParams {
                reason: "theft_size must leave tags on the floor".into(),
            });
        }
        if self.theft_period > 0 && self.detection_deadline == 0 {
            return Err(CoreError::InvalidParams {
                reason: "detection_deadline must be positive when thefts are scheduled".into(),
            });
        }
        Ok(())
    }
}

/// Per-category tallies of a soak run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakCounts {
    /// Ticks whose final verdict was intact.
    pub intact: u64,
    /// Ticks whose final verdict was a [`Verdict::NotIntact`] alarm.
    pub alarms: u64,
    /// Ticks whose final verdict was still desynced (retry budget
    /// exhausted — should stay rare).
    pub desynced: u64,
    /// In-tick desync recoveries (resync + fresh re-challenge).
    pub resyncs: u64,
    /// Quarantine events.
    pub quarantines: u64,
    /// Escalations that named a non-empty missing set.
    pub escalations: u64,
    /// Escalations triggered by channel noise alone (empty missing set).
    pub false_escalations: u64,
    /// Scripted thefts.
    pub thefts: u64,
    /// Scripted counter-desync bursts.
    pub desync_bursts: u64,
    /// Scripted response truncations (reader/link crashes).
    pub crashes: u64,
    /// Operator physical audits (counter resyncs + quarantine
    /// releases + post-theft recoveries).
    pub audits: u64,
}

/// The outcome of one soak run: counters, distributions, the
/// deterministic event log, and any invariant violations.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The configuration that produced this report.
    pub config: SoakConfig,
    /// Per-category tallies.
    pub counts: SoakCounts,
    /// Ticks spent in each channel level, in level order.
    pub level_ticks: Vec<(String, u64)>,
    /// Recovery latency (ticks from incident start to the first
    /// subsequent intact tick) per resolved incident, in order.
    pub recovery_latencies: Vec<u64>,
    /// Tick indices at which the operator audited.
    pub audit_ticks: Vec<u64>,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
    /// One line per tick; the determinism contract is that this log is
    /// byte-identical across runs of the same config.
    pub log: Vec<String>,
    /// The flight-recorder postmortem, when an instrumented run
    /// ([`run_soak_observed`]) tripped a failure trigger (invariant
    /// violation, desync, or quarantine). Always `None` for
    /// uninstrumented runs.
    pub flight_dump: Option<FlightDump>,
}

impl SoakReport {
    /// FNV-1a digest of the event log — the regression fingerprint CI
    /// compares across runs of the same seed.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a_lines(&self.log)
    }

    /// Whether all three invariants held for the entire run.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Recovery-latency percentile (nearest rank), if any incident
    /// resolved.
    #[must_use]
    pub fn latency_percentile(&self, q: f64) -> Option<f64> {
        let samples: Vec<f64> = self.recovery_latencies.iter().map(|&l| l as f64).collect();
        percentile(&samples, q)
    }

    /// Audits per 1000 ticks.
    #[must_use]
    pub fn audit_rate_per_1000(&self) -> f64 {
        if self.config.ticks == 0 {
            return 0.0;
        }
        self.counts.audits as f64 * 1000.0 / self.config.ticks as f64
    }

    /// Maximum number of audits inside any window of `window` ticks —
    /// the "bounded audit frequency" statistic CI tracks.
    #[must_use]
    pub fn max_audits_in_window(&self, window: u64) -> u64 {
        let mut max = 0u64;
        let mut lo = 0usize;
        for hi in 0..self.audit_ticks.len() {
            while self.audit_ticks[hi] - self.audit_ticks[lo] >= window {
                lo += 1;
            }
            max = max.max((hi - lo + 1) as u64);
        }
        max
    }

    /// Serializes the report as a self-contained JSON document (no
    /// external serializer: the schema is documented in `docs/SOAK.md`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let protocol = match c.protocol {
            TickProtocol::Trp => "trp",
            TickProtocol::Utrp => "utrp",
        };
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"config\": {{\"seed\": {}, \"ticks\": {}, \"n\": {}, \"m\": {}, \
             \"alpha\": {}, \"protocol\": \"{}\", \"burst_period\": {}, \
             \"theft_period\": {}, \"theft_size\": {}, \"detection_deadline\": {}, \
             \"desync_window\": {}, \"attribution_window\": {}}},\n",
            c.seed,
            c.ticks,
            c.n,
            c.m,
            json_f64(c.alpha),
            protocol,
            c.burst_period,
            c.theft_period,
            c.theft_size,
            c.detection_deadline,
            c.desync_window,
            c.attribution_window,
        ));
        let k = &self.counts;
        out.push_str(&format!(
            "  \"counts\": {{\"intact\": {}, \"alarms\": {}, \"desynced\": {}, \
             \"resyncs\": {}, \"quarantines\": {}, \"escalations\": {}, \
             \"false_escalations\": {}, \"thefts\": {}, \"desync_bursts\": {}, \
             \"crashes\": {}, \"audits\": {}}},\n",
            k.intact,
            k.alarms,
            k.desynced,
            k.resyncs,
            k.quarantines,
            k.escalations,
            k.false_escalations,
            k.thefts,
            k.desync_bursts,
            k.crashes,
            k.audits,
        ));
        out.push_str("  \"channel_ticks\": {");
        for (i, (name, ticks)) in self.level_ticks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json_escape(name), ticks));
        }
        out.push_str("},\n");

        let hi = (self.config.detection_deadline.max(10)) as f64;
        let mut hist = Histogram::new(0.0, hi, 10);
        hist.extend(self.recovery_latencies.iter().map(|&l| l as f64));
        let lat_json = |q: f64| self.latency_percentile(q).map_or("null".into(), json_f64);
        // Exact quantiles come from the retained samples; the `_est`
        // variants are what the same fixed-bucket estimator a live
        // scrape sees would report, so operators can calibrate
        // dashboard quantiles against ground truth.
        let est_json = |q: f64| hist.percentile(q).map_or("null".into(), json_f64);
        out.push_str(&format!(
            "  \"recovery_latency\": {{\"samples\": {}, \"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"p50_est\": {}, \"p90_est\": {}, \"p99_est\": {}, \
             \"max\": {}, \"histogram\": [",
            self.recovery_latencies.len(),
            lat_json(0.50),
            lat_json(0.90),
            lat_json(0.99),
            est_json(0.50),
            est_json(0.90),
            est_json(0.99),
            self.recovery_latencies
                .iter()
                .max()
                .map_or("null".into(), u64::to_string),
        ));
        for (i, count) in hist.bins().iter().enumerate() {
            let (lo, up) = hist.bin_range(i);
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"lo\": {}, \"hi\": {}, \"count\": {}}}",
                json_f64(lo),
                json_f64(up),
                count
            ));
        }
        out.push_str("]},\n");

        out.push_str(&format!(
            "  \"audit_frequency\": {{\"audits\": {}, \"per_1000_ticks\": {}, \
             \"max_in_100_ticks\": {}}},\n",
            self.counts.audits,
            json_f64(self.audit_rate_per_1000()),
            self.max_audits_in_window(100),
        ));

        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(v)));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"digest\": \"fnv1a:{:016x}\"\n", self.digest()));
        out.push_str("}\n");
        out
    }
}

/// A scripted incident currently awaiting recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpenIncident {
    /// A desync burst at the given tick (victim lags the mirror by 1).
    Burst { start: u64 },
    /// A truncated response at the given tick.
    Crash { start: u64 },
}

impl OpenIncident {
    fn start(self) -> u64 {
        match self {
            OpenIncident::Burst { start } | OpenIncident::Crash { start } => start,
        }
    }
}

/// The soak driver: the session under test, the world around it, and
/// the operator's bookkeeping. `pub(crate)` so the durable twin
/// (`crate::durable`) can drive it tick by tick around WAL appends.
pub(crate) struct SoakDriver<'a> {
    config: SoakConfig,
    obs: &'a Obs,
    session: MonitoringSession,
    floor: TagPopulation,
    markov: MarkovChannel,
    tick_rng: StdRng,
    markov_rng: StdRng,
    sched_rng: StdRng,
    counts: SoakCounts,
    level_ticks: Vec<u64>,
    latencies: Vec<u64>,
    audit_ticks: Vec<u64>,
    violations: Vec<String>,
    log: Vec<String>,
    /// Tags currently off the floor (theft in progress).
    stolen: Vec<Tag>,
    theft_start: Option<u64>,
    ever_stolen: Vec<TagId>,
    burst_victims: Vec<TagId>,
    open_incident: Option<OpenIncident>,
    /// A desync burst owed but deferred until a calm tick.
    pending_desync_burst: bool,
    last_burst: Option<u64>,
    last_crash: Option<u64>,
    last_noncalm: Option<u64>,
    log_cursor: usize,
    /// Transient per-tick flag: this tick's audits breached the
    /// policy's audit budget (reset at the top of every step, rendered
    /// into the tick's log line — never checkpointed, since captures
    /// happen at tick boundaries).
    audit_alert: bool,
}

impl<'a> SoakDriver<'a> {
    pub(crate) fn new(config: &SoakConfig, obs: &'a Obs) -> Result<Self, CoreError> {
        Self::with_policy(config, Self::derive_policy(config), obs)
    }

    /// The policy a config-only soak runs under: the legacy defaults
    /// carrying the config's protocol and desync window — exactly the
    /// ladder the pre-policy driver hardcoded, so config-driven runs
    /// keep their digests byte-for-byte.
    pub(crate) fn derive_policy(config: &SoakConfig) -> Policy {
        Policy {
            protocol: config.protocol,
            desync_window: config.desync_window,
            ..Policy::default()
        }
    }

    /// The policy the session is interpreting.
    pub(crate) fn policy(&self) -> &Policy {
        self.session.policy()
    }

    /// Sets the session round engine's worker-thread count. An
    /// execution knob, deliberately **not** a [`SoakConfig`] field:
    /// the config is serialized into durable WAL records, and thread
    /// count must never influence (or be implied by) a replay — every
    /// digest is byte-identical at any thread count.
    pub(crate) fn set_threads(&mut self, threads: usize) {
        self.session.set_threads(threads);
    }

    /// [`new`](Self::new) under an explicit declarative [`Policy`].
    /// The stored config copy is normalized to the policy's protocol
    /// and desync window, so incident scheduling and the report's
    /// config JSON agree with what the session actually interprets.
    pub(crate) fn with_policy(
        config: &SoakConfig,
        policy: Policy,
        obs: &'a Obs,
    ) -> Result<Self, CoreError> {
        let mut config = *config;
        config.protocol = policy.protocol;
        config.desync_window = policy.desync_window;
        let seeds = SeedSequence::new(config.seed);
        let floor = TagPopulation::with_sequential_ids(config.n);
        let server_config = ServerConfig {
            desync_window: policy.desync_window,
            ..ServerConfig::default()
        };
        let server =
            MonitorServer::with_config(floor.ids(), config.m, config.alpha, server_config)?;
        let session = MonitoringSession::new(server, policy);
        let markov = MarkovChannel::presets();
        let levels = markov.levels().len();
        // The whole run is one session span; every tick span nests
        // under it. `finish` closes it (and any stragglers).
        obs.span_open(tagwatch_obs::SpanKind::Session);
        Ok(SoakDriver {
            config,
            obs,
            session,
            floor,
            markov,
            tick_rng: seeds.rng_for(0),
            markov_rng: seeds.rng_for(1),
            sched_rng: seeds.rng_for(2),
            counts: SoakCounts::default(),
            level_ticks: vec![0; levels],
            latencies: Vec::new(),
            audit_ticks: Vec::new(),
            violations: Vec::new(),
            log: Vec::new(),
            stolen: Vec::new(),
            theft_start: None,
            ever_stolen: Vec::new(),
            burst_victims: Vec::new(),
            open_incident: None,
            pending_desync_burst: false,
            last_burst: None,
            last_crash: None,
            last_noncalm: None,
            log_cursor: 0,
            audit_alert: false,
        })
    }

    /// Invariant 3: is an audit at tick `t` attributable to an incident
    /// or to channel noise within the attribution window?
    fn audit_attributable(&self, t: u64) -> bool {
        let w = self.config.attribution_window;
        let recent = |at: Option<u64>| at.is_some_and(|s| t.saturating_sub(s) <= w);
        self.theft_start.is_some()
            || recent(self.last_burst)
            || recent(self.last_crash)
            || recent(self.last_noncalm)
    }

    /// Records an invariant violation and fires the observability
    /// postmortem triggers: the violation counter, an
    /// [`ObsEvent::InvariantViolated`] event, and the flight-recorder
    /// dump latch (first trigger wins, so the retained window is the
    /// one closest to the original fault).
    fn violate(&mut self, t: u64, invariant: u8, message: String) {
        self.obs.inc(self.obs.m.soak_violations);
        self.obs
            .emit(ObsEvent::InvariantViolated { tick: t, invariant });
        self.obs.capture_dump("invariant_violation");
        self.violations.push(message);
    }

    /// Records one operator audit at tick `t`, checking invariant 3.
    /// `released` is how many quarantined tags the audit returned to
    /// service; `latency_ticks` how long the audited condition stood.
    fn record_audit(&mut self, t: u64, what: &str, released: u64, latency_ticks: u64) {
        self.counts.audits += 1;
        self.audit_ticks.push(t);
        self.obs.inc(self.obs.m.audits_total);
        self.obs
            .observe(self.obs.m.audit_latency_ticks, latency_ticks as f64);
        self.obs.emit(ObsEvent::AuditCompleted {
            released,
            latency_ticks,
        });
        if let Some(budget) = self.session.policy().audit_budget {
            let window = self.session.policy().audit_window;
            let floor = t.saturating_sub(window.saturating_sub(1));
            let in_window = self
                .audit_ticks
                .iter()
                .filter(|&&tick| tick >= floor)
                .count() as u64;
            if in_window > u64::from(budget) {
                self.obs.emit(ObsEvent::PolicyAlert {
                    tick: t,
                    audits: in_window,
                    budget: u64::from(budget),
                    window,
                });
                self.audit_alert = true;
            }
        }
        if !self.audit_attributable(t) {
            let message = format!(
                "I3 violated at tick {t}: {what} audit with no incident or channel noise \
                 within the last {} ticks",
                self.config.attribution_window
            );
            self.violate(t, 3, message);
        }
    }

    /// Operator pre-tick pass: release audited quarantined tags and
    /// re-trust the counter mirror when the previous tick left it
    /// unsynchronized. Both are physical audits.
    fn operator_pass(&mut self, t: u64) -> Result<(), CoreError> {
        let quarantined = self.session.quarantined();
        if !quarantined.is_empty() {
            let released = self.session.release_quarantined(quarantined);
            // The operator drains the quarantine on the tick after it
            // filled, so the audited condition stood for one tick.
            self.record_audit(
                t,
                &format!("quarantine release of {} tag(s)", released.len()),
                released.len() as u64,
                1,
            );
        }
        if !self.session.server().counters_synced() {
            self.session.audit_resync(&self.floor)?;
            self.record_audit(t, "counter resync", 0, 1);
        }
        Ok(())
    }

    /// Starts a theft: removes `theft_size` random tags from the floor.
    fn start_theft(&mut self, t: u64) -> Result<(), CoreError> {
        let taken = self
            .floor
            .remove_random(self.config.theft_size, &mut self.sched_rng)
            .map_err(|e| CoreError::InvalidParams {
                reason: format!("soak theft failed: {e}"),
            })?;
        for tag in &taken {
            if !self.ever_stolen.contains(&tag.id()) {
                self.ever_stolen.push(tag.id());
            }
        }
        self.stolen = taken;
        self.theft_start = Some(t);
        self.counts.thefts += 1;
        Ok(())
    }

    /// Scripts a counter-desync burst for this tick, if possible: a
    /// dry run of the exact challenge the session is about to issue
    /// (same server state, cloned RNG) attributes the expected round,
    /// and the victim — the lowest-ID tag that replies — loses the
    /// round's *final* announcement. The round verifies intact, but the
    /// victim's counter silently lags the mirror by one, and the next
    /// round diagnoses exactly that tag. Repeat victims accumulate
    /// strikes and get quarantined, which is what invariant 2 watches.
    ///
    /// Only scripted on calm ticks: under a noisy channel the realized
    /// announcement schedule can diverge from the dry run and the fault
    /// would land on the wrong announcement.
    fn script_desync_burst(&mut self, t: u64) -> Result<Option<FaultPlan>, CoreError> {
        let mut preview_rng = self.tick_rng.clone();
        let server = self.session.server();
        let challenge = server.issue_utrp_challenge(&mut preview_rng)?;
        let mut registry: Vec<(TagId, Counter)> = Vec::new();
        for id in server.registered_ids() {
            registry.push((id, server.counter_of(id)?));
        }
        let (dry, attribution) = attributed_round(&registry, &challenge)?;
        let Some(victim) = attribution.iter().flatten().copied().min() else {
            return Ok(None); // nobody replies: defer the burst
        };
        if !self.burst_victims.contains(&victim) {
            self.burst_victims.push(victim);
        }
        self.counts.desync_bursts += 1;
        self.last_burst = Some(t);
        self.open_incident = Some(OpenIncident::Burst { start: t });
        self.pending_desync_burst = false;
        Ok(Some(
            FaultPlan::new().lose_announcement(dry.announcements - 1, [victim]),
        ))
    }

    /// Scripts a response truncation ("the reader crashed after the
    /// field round; the response was cut off in transit").
    fn script_crash(&mut self, t: u64) -> FaultPlan {
        self.counts.crashes += 1;
        self.last_crash = Some(t);
        self.open_incident = Some(OpenIncident::Crash { start: t });
        FaultPlan::new().truncate_response(8)
    }

    /// Decides this tick's scripted incident (at most one) and returns
    /// the fault plan to hand the executor.
    fn schedule_incidents(&mut self, t: u64, calm: bool) -> Result<Option<FaultPlan>, CoreError> {
        let SoakConfig {
            theft_period,
            burst_period,
            ..
        } = self.config;

        if self.stolen.is_empty() && theft_period > 0 && t > 0 && t.is_multiple_of(theft_period) {
            self.start_theft(t)?;
            return Ok(None); // the theft itself is the incident
        }
        if self.theft_start.is_some() || self.open_incident.is_some() {
            return Ok(None); // one incident at a time
        }
        if burst_period > 0 && t > 0 && t.is_multiple_of(burst_period) {
            // Alternate desync bursts and crashes; TRP has no counters,
            // so every TRP burst is a crash.
            let want_desync = self.config.protocol == TickProtocol::Utrp
                && (self.counts.desync_bursts + self.counts.crashes).is_multiple_of(2);
            if want_desync {
                self.pending_desync_burst = true;
            } else {
                return Ok(Some(self.script_crash(t)));
            }
        }
        if self.pending_desync_burst && calm {
            return self.script_desync_burst(t);
        }
        Ok(None)
    }

    /// Digests the session events this tick appended, enforcing the
    /// invariants they witness. Returns the tick's final verdict tag
    /// and a compact event trace for the log line.
    fn scan_events(&mut self, t: u64) -> Result<(String, String), CoreError> {
        let events: Vec<SessionEvent> = self.session.log()[self.log_cursor..].to_vec();
        self.log_cursor = self.session.log().len();

        let mut verdict = String::from("-");
        let mut trace = String::new();
        for event in &events {
            match event {
                SessionEvent::Checked(report) => {
                    match report.verdict {
                        Verdict::Intact => {
                            self.counts.intact += 1;
                            verdict = "intact".into();
                            // Invariant 1 (exactness): intact means zero
                            // residual mismatches, always.
                            if report.mismatched_slots != 0 {
                                let message = format!(
                                    "I1 violated at tick {t}: intact verdict with {} \
                                     mismatched slots",
                                    report.mismatched_slots
                                );
                                self.violate(t, 1, message);
                            }
                        }
                        Verdict::NotIntact => {
                            self.counts.alarms += 1;
                            verdict = "alarm".into();
                        }
                        Verdict::Desynced { .. } => {
                            self.counts.desynced += 1;
                            verdict = "desynced".into();
                        }
                    }
                    trace.push('C');
                }
                SessionEvent::Resynced { .. } => {
                    self.counts.resyncs += 1;
                    trace.push('R');
                }
                SessionEvent::Quarantined { tags } => {
                    self.counts.quarantines += 1;
                    trace.push('Q');
                    // Invariant 2 (attribution): every quarantine traces
                    // to a scripted desync victim, a theft, or channel
                    // noise within the window. A lost reply whose
                    // hypothesized lag-slot collides into an occupied
                    // slot is diagnosed as a single-tag lag on an
                    // innocent tag — indistinguishable at the bitstring
                    // level — so noisy ticks legitimately strike
                    // bystanders; calm incident-free operation must not.
                    let w = self.config.attribution_window;
                    let noisy = self.last_noncalm.is_some_and(|s| t.saturating_sub(s) <= w);
                    for &tag in tags {
                        if !self.burst_victims.contains(&tag)
                            && !self.ever_stolen.contains(&tag)
                            && !noisy
                        {
                            let message = format!(
                                "I2 violated at tick {t}: tag {tag} quarantined without a \
                                 scripted desync, theft, or channel noise against it"
                            );
                            self.violate(t, 2, message);
                        }
                    }
                }
                SessionEvent::Escalated {
                    missing,
                    unresolved,
                    ..
                } => {
                    trace.push('E');
                    if let Some(start) = self.theft_start {
                        self.counts.escalations += 1;
                        // Invariant 1 (detection): identification must
                        // name exactly the stolen tags.
                        let mut expected: Vec<TagId> = self.stolen.iter().map(Tag::id).collect();
                        expected.sort_unstable();
                        if *missing != expected || !unresolved.is_empty() {
                            let message = format!(
                                "I1 violated at tick {t}: escalation named {missing:?} \
                                 (unresolved {unresolved:?}), expected {expected:?}"
                            );
                            self.violate(t, 1, message);
                        }
                        self.recover_theft(t, start)?;
                    } else if missing.is_empty() && unresolved.is_empty() {
                        // Channel noise double-alarmed; identification
                        // correctly found nothing missing.
                        self.counts.false_escalations += 1;
                    } else {
                        let message = format!(
                            "I1 violated at tick {t}: escalation named {missing:?} \
                             (unresolved {unresolved:?}) with nothing stolen"
                        );
                        self.violate(t, 1, message);
                    }
                }
            }
        }
        Ok((verdict, trace))
    }

    /// Ends a theft after identification named it: the operator
    /// retrieves the tags, returns them to the floor, and audits the
    /// counters (the mirror kept advancing announcements the stolen
    /// tags never heard).
    fn recover_theft(&mut self, t: u64, start: u64) -> Result<(), CoreError> {
        for tag in std::mem::take(&mut self.stolen) {
            self.floor
                .insert(tag)
                .map_err(|e| CoreError::InvalidParams {
                    reason: format!("soak reinsert failed: {e}"),
                })?;
        }
        self.session.audit_resync(&self.floor)?;
        self.record_audit(t, "post-theft recovery", 0, t - start + 1);
        self.theft_start = None;
        self.latencies.push(t - start + 1);
        Ok(())
    }

    fn run(mut self) -> Result<SoakReport, CoreError> {
        for t in 0..self.config.ticks {
            self.step(t)?;
        }
        Ok(self.finish())
    }

    /// Runs exactly one soak tick: the loop body of [`run`](Self::run),
    /// extracted verbatim so the durable twin can interleave WAL
    /// appends (and scripted crashes) between ticks. Appends one line
    /// to the log.
    pub(crate) fn step(&mut self, t: u64) -> Result<(), CoreError> {
        // Bracket the tick in a span; close on the error path too so a
        // failed tick never leaves the recorder's stack misaligned.
        self.obs.span_open(tagwatch_obs::SpanKind::Tick);
        let result = self.step_inner(t);
        self.obs.span_close();
        result
    }

    fn step_inner(&mut self, t: u64) -> Result<(), CoreError> {
        {
            self.audit_alert = false;

            // 1. The world moves: channel level for this tick.
            let level = self.markov.step(&mut self.markov_rng);
            let level_name = level.name.clone();
            let state = self.markov.state();
            self.level_ticks[state] += 1;
            let calm = self.markov.channel().is_ideal();
            if !calm {
                self.last_noncalm = Some(t);
            }

            // 2. The operator reacts to what the previous tick left.
            self.operator_pass(t)?;

            // 3. Scripted incidents for this tick.
            let plan = self.schedule_incidents(t, calm)?;

            // 4. One monitoring tick through the channel + fault plan.
            let executor = RoundExecutor::new(self.markov.channel(), plan);
            self.session.tick_with(
                &mut self.floor,
                &executor,
                &mut self.tick_rng,
                Some(self.obs),
            )?;

            // 5. Digest the tick's events; enforce invariants.
            let (verdict, trace) = self.scan_events(t)?;
            self.obs.inc(self.obs.m.soak_ticks);
            self.obs.emit(ObsEvent::TickCompleted {
                tick: t,
                verdict: match verdict.as_str() {
                    "intact" => VerdictKind::Intact,
                    "desynced" => VerdictKind::Desynced,
                    _ => VerdictKind::NotIntact,
                },
            });

            // 6. Close out burst/crash incidents on the first intact
            //    tick after they fired.
            if let Some(incident) = self.open_incident {
                if t > incident.start() && verdict == "intact" {
                    self.latencies.push(t - incident.start());
                    self.open_incident = None;
                }
            }

            // 7. Invariant 1 (deadline): a theft may not stay unnamed.
            if let Some(start) = self.theft_start {
                if t - start >= self.config.detection_deadline {
                    let message = format!(
                        "I1 violated at tick {t}: theft from tick {start} still undetected \
                         after {} ticks",
                        self.config.detection_deadline
                    );
                    self.violate(t, 1, message);
                    self.recover_theft(t, start)?;
                }
            }

            self.log.push(format!(
                "t={t:05} level={level_name} events={} verdict={verdict}{}",
                if trace.is_empty() { "-" } else { &trace },
                if self.audit_alert {
                    " alert=audit-budget"
                } else {
                    ""
                }
            ));
        }
        Ok(())
    }

    /// Post-loop wrap-up of [`run`](Self::run), extracted verbatim:
    /// drains any final-tick quarantine, checks convergence, and
    /// assembles the report.
    pub(crate) fn finish(mut self) -> SoakReport {
        // Invariant 2 (convergence): the operator loop drains the
        // quarantine every tick, so only a quarantine on the *final*
        // tick (whose attribution was already checked above) can be
        // left; the operator's closing audit releases it. Anything the
        // release does not clear would be a convergence failure.
        let leftover = self.session.quarantined();
        if !leftover.is_empty() {
            self.counts.audits += 1;
            self.audit_ticks.push(self.config.ticks - 1);
            self.obs.inc(self.obs.m.audits_total);
            self.obs.observe(self.obs.m.audit_latency_ticks, 1.0);
            self.obs.emit(ObsEvent::AuditCompleted {
                released: leftover.len() as u64,
                latency_ticks: 1,
            });
            self.session.release_quarantined(leftover);
        }
        if !self.session.quarantined().is_empty() {
            let message = format!(
                "I2 violated: quarantine failed to converge; {:?} still held at end of run",
                self.session.quarantined()
            );
            self.violate(self.config.ticks - 1, 2, message);
        }

        // Seal the span tree: the session span opened in the
        // constructor, plus anything an aborted tick left open.
        self.obs.span_close_all();

        let level_ticks = self
            .markov
            .levels()
            .iter()
            .zip(&self.level_ticks)
            .map(|(level, &ticks)| (level.name.clone(), ticks))
            .collect();
        SoakReport {
            config: self.config,
            counts: self.counts,
            level_ticks,
            recovery_latencies: self.latencies,
            audit_ticks: self.audit_ticks,
            violations: self.violations,
            log: self.log,
            flight_dump: self.obs.dump(),
        }
    }

    /// The log line [`step`](Self::step) appended last (empty before
    /// the first tick) — what the durable twin records per tick.
    pub(crate) fn last_log_line(&self) -> &str {
        self.log.last().map_or("", String::as_str)
    }

    /// Replaces the log wholesale with lines recovered from a WAL's
    /// tick records. Recovery calls this right after
    /// [`from_checkpoint`](Self::from_checkpoint) so the report's log
    /// covers tick 0 even though the driver restarted mid-run.
    pub(crate) fn seed_log(&mut self, lines: Vec<String>) {
        self.log = lines;
    }

    /// Serializes the driver's complete durable state — everything
    /// that influences ticks `>= next_tick` — into a checkpoint
    /// document. The per-tick log is deliberately absent: recovery
    /// rebuilds it from the WAL's tick records via
    /// [`seed_log`](Self::seed_log).
    ///
    /// # Errors
    ///
    /// Structurally infallible for a live driver (no section name or
    /// line it emits violates the document grammar); any
    /// [`StoreError`] surfacing here indicates a bug, propagated
    /// rather than swallowed.
    pub(crate) fn capture_checkpoint(&self, next_tick: u64) -> Result<CheckpointDoc, StoreError> {
        let rng_line = |name: &str, state: [u64; 4]| {
            format!(
                "{name} {:016x} {:016x} {:016x} {:016x}",
                state[0], state[1], state[2], state[3]
            )
        };
        let mut doc = CheckpointDoc::new();
        doc.push_section("meta", [format!("next_tick {next_tick}")])?;
        doc.push_section(
            "rng",
            [
                rng_line("tick", self.tick_rng.state()),
                rng_line("markov", self.markov_rng.state()),
                rng_line("sched", self.sched_rng.state()),
            ],
        )?;
        doc.push_section("markov", [format!("state {}", self.markov.state())])?;
        doc.push_section(
            "registry",
            self.session
                .server()
                .capture_state()
                .to_text()
                .lines()
                .map(str::to_owned),
        )?;
        let ladder = self.session.ladder_state();
        let mut ladder_lines = vec![format!("alarms {}", ladder.consecutive_alarms)];
        for (id, strikes) in &ladder.desync_strikes {
            ladder_lines.push(format!("strike {:024x} {strikes}", id.as_u128()));
        }
        for id in &ladder.quarantined {
            ladder_lines.push(format!("quarantined {:024x}", id.as_u128()));
        }
        doc.push_section("ladder", ladder_lines)?;
        doc.push_section("policy", self.session.policy().to_flat_lines())?;
        doc.push_section("floor", self.floor.iter().map(tag_line))?;
        doc.push_section("stolen", self.stolen.iter().map(tag_line))?;
        doc.push_section(
            "incidents",
            [
                format!("theft_start {}", opt_line(self.theft_start)),
                format!(
                    "open {}",
                    match self.open_incident {
                        None => "none".to_string(),
                        Some(OpenIncident::Burst { start }) => format!("burst {start}"),
                        Some(OpenIncident::Crash { start }) => format!("crash {start}"),
                    }
                ),
                format!(
                    "pending_desync_burst {}",
                    u8::from(self.pending_desync_burst)
                ),
                format!("last_burst {}", opt_line(self.last_burst)),
                format!("last_crash {}", opt_line(self.last_crash)),
                format!("last_noncalm {}", opt_line(self.last_noncalm)),
            ],
        )?;
        doc.push_section(
            "ever_stolen",
            self.ever_stolen
                .iter()
                .map(|id| format!("{:024x}", id.as_u128())),
        )?;
        doc.push_section(
            "burst_victims",
            self.burst_victims
                .iter()
                .map(|id| format!("{:024x}", id.as_u128())),
        )?;
        let k = &self.counts;
        doc.push_section(
            "counts",
            [
                format!("intact {}", k.intact),
                format!("alarms {}", k.alarms),
                format!("desynced {}", k.desynced),
                format!("resyncs {}", k.resyncs),
                format!("quarantines {}", k.quarantines),
                format!("escalations {}", k.escalations),
                format!("false_escalations {}", k.false_escalations),
                format!("thefts {}", k.thefts),
                format!("desync_bursts {}", k.desync_bursts),
                format!("crashes {}", k.crashes),
                format!("audits {}", k.audits),
            ],
        )?;
        doc.push_section("level_ticks", self.level_ticks.iter().map(u64::to_string))?;
        doc.push_section("latencies", self.latencies.iter().map(u64::to_string))?;
        doc.push_section("audit_ticks", self.audit_ticks.iter().map(u64::to_string))?;
        doc.push_section("violations", self.violations.iter().cloned())?;
        Ok(doc)
    }

    /// Rebuilds a driver from a checkpoint captured by
    /// [`capture_checkpoint`](Self::capture_checkpoint), such that
    /// stepping it from the checkpoint's `next_tick` is byte-identical
    /// to the uninterrupted run. `config` and `obs` are the run's
    /// non-durable context (the config also rides in the WAL's own
    /// config record; the caller decodes it before calling this).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidSection`] for any section that is
    /// missing or holds lines [`capture_checkpoint`]
    /// (Self::capture_checkpoint) could not have written — recovery
    /// feeds this checksummed bytes, so failures indicate version skew
    /// rather than disk corruption.
    pub(crate) fn from_checkpoint(
        config: &SoakConfig,
        obs: &'a Obs,
        doc: &CheckpointDoc,
    ) -> Result<Self, StoreError> {
        // The policy rides in the checkpoint so recovery replays under
        // exactly the ladder the run started with; checkpoints written
        // before the policy engine fall back to the config-derived
        // legacy defaults (which is what those runs executed under).
        let policy = match doc.section("policy") {
            Some(lines) => Policy::from_flat_lines(lines)
                .map_err(|e| invalid(format!("checkpoint policy: {e}")))?,
            None => Self::derive_policy(config),
        };
        let mut config = *config;
        config.protocol = policy.protocol;
        config.desync_window = policy.desync_window;

        let registry_text = section(doc, "registry")?.join("\n");
        let snapshot = RegistrySnapshot::from_text(&registry_text)
            .map_err(|e| invalid(format!("checkpoint registry: {e}")))?;
        let server_config = ServerConfig {
            desync_window: policy.desync_window,
            ..ServerConfig::default()
        };
        let server = MonitorServer::restore_state(snapshot, server_config)
            .map_err(|e| invalid(format!("checkpoint registry rejected: {e}")))?;

        let mut ladder = SessionLadderState::default();
        for line in section(doc, "ladder")? {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("alarms") => {
                    ladder.consecutive_alarms = parse_num(parts.next(), "ladder alarms")? as u32;
                }
                Some("strike") => {
                    let id = parse_id(parts.next(), "ladder strike id")?;
                    let strikes = parse_num(parts.next(), "ladder strike count")? as u32;
                    ladder.desync_strikes.push((id, strikes));
                }
                Some("quarantined") => {
                    ladder
                        .quarantined
                        .push(parse_id(parts.next(), "ladder quarantined id")?);
                }
                _ => return Err(invalid(format!("unknown ladder line `{line}`"))),
            }
        }
        let session = MonitoringSession::restore(server, policy, &ladder);

        let mut markov = MarkovChannel::presets();
        let state_line = single_line(doc, "markov")?;
        let state = parse_num(state_line.strip_prefix("state "), "markov state")? as usize;
        markov
            .restore_state(state)
            .map_err(|e| invalid(format!("checkpoint markov state: {e}")))?;

        let rng_lines = section(doc, "rng")?;
        let rng_state = |idx: usize, name: &str| -> Result<StdRng, StoreError> {
            let line = rng_lines
                .get(idx)
                .ok_or_else(|| invalid(format!("checkpoint rng missing `{name}` line")))?;
            let rest = line
                .strip_prefix(name)
                .ok_or_else(|| invalid(format!("checkpoint rng line {idx} is not `{name}`")))?;
            let mut state = [0u64; 4];
            let mut words = rest.split_whitespace();
            for slot in &mut state {
                let word = words
                    .next()
                    .ok_or_else(|| invalid(format!("checkpoint rng `{name}` too short")))?;
                *slot = u64::from_str_radix(word, 16)
                    .map_err(|_| invalid(format!("checkpoint rng `{name}` bad word")))?;
            }
            Ok(StdRng::from_state(state))
        };
        let tick_rng = rng_state(0, "tick")?;
        let markov_rng = rng_state(1, "markov")?;
        let sched_rng = rng_state(2, "sched")?;

        let mut floor = TagPopulation::new();
        for line in section(doc, "floor")? {
            floor
                .insert(parse_tag(line)?)
                .map_err(|e| invalid(format!("checkpoint floor: {e}")))?;
        }
        let stolen = section(doc, "stolen")?
            .iter()
            .map(|line| parse_tag(line))
            .collect::<Result<Vec<Tag>, StoreError>>()?;

        let incidents = section(doc, "incidents")?;
        let keyed = |idx: usize, key: &str| -> Result<&str, StoreError> {
            incidents
                .get(idx)
                .and_then(|line| line.strip_prefix(key).and_then(|r| r.strip_prefix(' ')))
                .ok_or_else(|| invalid(format!("checkpoint incidents missing `{key}`")))
        };
        let theft_start = parse_opt(keyed(0, "theft_start")?, "theft_start")?;
        let open_incident = match keyed(1, "open")?.split_whitespace().collect::<Vec<_>>()[..] {
            ["none"] => None,
            ["burst", start] => Some(OpenIncident::Burst {
                start: parse_num(Some(start), "open burst start")?,
            }),
            ["crash", start] => Some(OpenIncident::Crash {
                start: parse_num(Some(start), "open crash start")?,
            }),
            _ => return Err(invalid("checkpoint incidents bad `open` line".into())),
        };
        let pending_desync_burst =
            parse_num(Some(keyed(2, "pending_desync_burst")?), "pending flag")? != 0;
        let last_burst = parse_opt(keyed(3, "last_burst")?, "last_burst")?;
        let last_crash = parse_opt(keyed(4, "last_crash")?, "last_crash")?;
        let last_noncalm = parse_opt(keyed(5, "last_noncalm")?, "last_noncalm")?;

        let ids = |name: &str| -> Result<Vec<TagId>, StoreError> {
            section(doc, name)?
                .iter()
                .map(|line| parse_id(Some(line), name))
                .collect()
        };
        let ever_stolen = ids("ever_stolen")?;
        let burst_victims = ids("burst_victims")?;

        let count_lines = section(doc, "counts")?;
        let count = |idx: usize, key: &str| -> Result<u64, StoreError> {
            let line = count_lines
                .get(idx)
                .ok_or_else(|| invalid(format!("checkpoint counts missing `{key}`")))?;
            parse_num(line.strip_prefix(key).map(str::trim), key)
        };
        let counts = SoakCounts {
            intact: count(0, "intact")?,
            alarms: count(1, "alarms")?,
            desynced: count(2, "desynced")?,
            resyncs: count(3, "resyncs")?,
            quarantines: count(4, "quarantines")?,
            escalations: count(5, "escalations")?,
            false_escalations: count(6, "false_escalations")?,
            thefts: count(7, "thefts")?,
            desync_bursts: count(8, "desync_bursts")?,
            crashes: count(9, "crashes")?,
            audits: count(10, "audits")?,
        };

        let nums = |name: &str| -> Result<Vec<u64>, StoreError> {
            section(doc, name)?
                .iter()
                .map(|line| parse_num(Some(line), name))
                .collect()
        };
        let level_ticks = nums("level_ticks")?;
        if level_ticks.len() != markov.levels().len() {
            return Err(invalid(format!(
                "checkpoint level_ticks has {} entries, channel has {} levels",
                level_ticks.len(),
                markov.levels().len()
            )));
        }
        let latencies = nums("latencies")?;
        let audit_ticks = nums("audit_ticks")?;
        let violations = section(doc, "violations")?.to_vec();

        // A restored run gets its own session span (span trees are
        // in-memory only — they do not ride the checkpoint).
        obs.span_open(tagwatch_obs::SpanKind::Session);

        Ok(SoakDriver {
            config,
            obs,
            session,
            floor,
            markov,
            tick_rng,
            markov_rng,
            sched_rng,
            counts,
            level_ticks,
            latencies,
            audit_ticks,
            violations,
            log: Vec::new(),
            stolen,
            theft_start,
            ever_stolen,
            burst_victims,
            open_incident,
            pending_desync_burst,
            last_burst,
            last_crash,
            last_noncalm,
            log_cursor: 0,
            audit_alert: false,
        })
    }
}

/// The checkpoint's `meta` cursor: the tick the restored driver must
/// execute next (its capture preceded that tick's step).
pub(crate) fn checkpoint_next_tick(doc: &CheckpointDoc) -> Result<u64, StoreError> {
    let line = single_line(doc, "meta")?;
    parse_num(line.strip_prefix("next_tick "), "meta next_tick")
}

fn invalid(message: String) -> StoreError {
    StoreError::InvalidSection { message }
}

fn section<'d>(doc: &'d CheckpointDoc, name: &str) -> Result<&'d [String], StoreError> {
    doc.section(name)
        .ok_or_else(|| invalid(format!("checkpoint missing @section {name}")))
}

fn single_line<'d>(doc: &'d CheckpointDoc, name: &str) -> Result<&'d str, StoreError> {
    let lines = section(doc, name)?;
    match lines {
        [line] => Ok(line),
        _ => Err(invalid(format!(
            "checkpoint @section {name} must hold exactly one line"
        ))),
    }
}

fn parse_num(field: Option<&str>, what: &str) -> Result<u64, StoreError> {
    field
        .and_then(|v| v.trim().parse::<u64>().ok())
        .ok_or_else(|| invalid(format!("checkpoint bad {what}")))
}

fn parse_id(field: Option<&str>, what: &str) -> Result<TagId, StoreError> {
    field
        .and_then(|v| u128::from_str_radix(v.trim(), 16).ok())
        .map(TagId::new)
        .ok_or_else(|| invalid(format!("checkpoint bad {what}")))
}

fn parse_opt(value: &str, what: &str) -> Result<Option<u64>, StoreError> {
    if value == "none" {
        Ok(None)
    } else {
        parse_num(Some(value), what).map(Some)
    }
}

fn tag_line(tag: &Tag) -> String {
    format!(
        "{:024x} {} {}",
        tag.id().as_u128(),
        tag.counter().get(),
        u8::from(tag.is_detuned())
    )
}

fn parse_tag(line: &str) -> Result<Tag, StoreError> {
    let mut parts = line.split_whitespace();
    let id = parse_id(parts.next(), "tag id")?;
    let counter = parse_num(parts.next(), "tag counter")?;
    let detuned = parse_num(parts.next(), "tag detuned flag")? != 0;
    let mut tag = Tag::with_counter(id, Counter::new(counter));
    tag.set_detuned(detuned);
    Ok(tag)
}

fn opt_line(value: Option<u64>) -> String {
    value.map_or_else(|| "none".to_string(), |v| v.to_string())
}

/// Runs one deterministic soak and returns its report. See the module
/// docs for the channel model, incident schedule, and invariants.
///
/// Byte-identical to [`run_soak_observed`] with a disabled [`Obs`]:
/// same log, same digest, same report.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for inconsistent configs, and
/// propagates protocol errors (none are expected on a healthy run —
/// every fault the driver scripts is one the session recovers from).
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, CoreError> {
    run_soak_observed(config, &Obs::disabled())
}

/// [`run_soak`] with telemetry: rounds, verdicts, resyncs, audits, and
/// per-tick outcomes stream into `obs`'s metrics and flight ring, and
/// any invariant violation (as well as any desync or quarantine inside
/// the session) latches a flight-recorder dump — returned on the
/// report as [`SoakReport::flight_dump`] — for postmortem inspection.
///
/// # Errors
///
/// See [`run_soak`].
pub fn run_soak_observed(config: &SoakConfig, obs: &Obs) -> Result<SoakReport, CoreError> {
    run_soak_observed_threads(config, obs, 1)
}

/// [`run_soak_observed`] with the session's round engine scanning on
/// `threads` workers (1 = the scalar engine, byte-identical to
/// [`run_soak`]). Thread count is an execution knob, not part of
/// [`SoakConfig`]: the report — log, digest, counts — is byte-identical
/// at any value, which `tests/determinism_digests.rs` pins against the
/// committed goldens.
///
/// # Errors
///
/// See [`run_soak`].
pub fn run_soak_observed_threads(
    config: &SoakConfig,
    obs: &Obs,
    threads: usize,
) -> Result<SoakReport, CoreError> {
    config.validate()?;
    let mut driver = SoakDriver::new(config, obs)?;
    driver.set_threads(threads);
    driver.run()
}

/// [`run_soak`] under an explicit declarative [`Policy`] instead of the
/// config-derived legacy defaults. The policy's protocol and desync
/// window override the config's (the config still supplies the fleet
/// shape and incident schedule), so the report's config JSON reflects
/// what actually ran. Running under
/// `SoakDriver`'s derived default policy is byte-identical to
/// [`run_soak`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for inconsistent configs or a
/// policy that fails [`Policy::validate`], and propagates protocol
/// errors as [`run_soak`] does.
pub fn run_soak_policy(config: &SoakConfig, policy: &Policy) -> Result<SoakReport, CoreError> {
    run_soak_policy_observed(config, policy, &Obs::disabled())
}

/// [`run_soak_policy`] with telemetry, mirroring [`run_soak_observed`].
///
/// # Errors
///
/// See [`run_soak_policy`].
pub fn run_soak_policy_observed(
    config: &SoakConfig,
    policy: &Policy,
    obs: &Obs,
) -> Result<SoakReport, CoreError> {
    run_soak_policy_observed_threads(config, policy, obs, 1)
}

/// [`run_soak_policy_observed`] on a `threads`-worker round engine,
/// mirroring [`run_soak_observed_threads`]: same report bytes at any
/// thread count.
///
/// # Errors
///
/// See [`run_soak_policy`].
pub fn run_soak_policy_observed_threads(
    config: &SoakConfig,
    policy: &Policy,
    obs: &Obs,
    threads: usize,
) -> Result<SoakReport, CoreError> {
    config.validate()?;
    policy.validate().map_err(|e| CoreError::InvalidParams {
        reason: format!("policy rejected: {e}"),
    })?;
    let mut driver = SoakDriver::with_policy(config, policy.clone(), obs)?;
    driver.set_threads(threads);
    driver.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(protocol: TickProtocol) -> SoakConfig {
        SoakConfig {
            ticks: 120,
            burst_period: 25,
            theft_period: 60,
            protocol,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn utrp_soak_is_clean_and_exercises_every_incident_kind() {
        let report = run_soak(&short(TickProtocol::Utrp)).unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.counts.thefts >= 1);
        assert!(report.counts.desync_bursts + report.counts.crashes >= 2);
        assert!(report.counts.escalations >= 1, "{:?}", report.counts);
        assert!(!report.recovery_latencies.is_empty());
        assert_eq!(report.log.len(), 120);
    }

    #[test]
    fn trp_soak_is_clean() {
        let report = run_soak(&short(TickProtocol::Trp)).unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.counts.crashes >= 1);
        assert_eq!(report.counts.desync_bursts, 0, "TRP has no counters");
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let config = short(TickProtocol::Utrp);
        let a = run_soak(&config).unwrap();
        let b = run_soak(&config).unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_soak(&short(TickProtocol::Utrp)).unwrap();
        let b = run_soak(&SoakConfig {
            seed: 2,
            ..short(TickProtocol::Utrp)
        })
        .unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn report_json_has_the_documented_sections() {
        let report = run_soak(&SoakConfig {
            ticks: 30,
            theft_period: 0,
            burst_period: 10,
            ..SoakConfig::default()
        })
        .unwrap();
        let json = report.to_json();
        for key in [
            "\"config\"",
            "\"counts\"",
            "\"channel_ticks\"",
            "\"recovery_latency\"",
            "\"audit_frequency\"",
            "\"violations\"",
            "\"digest\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("fnv1a:"));
    }

    #[test]
    fn observed_soak_matches_plain_and_fills_metrics() {
        let config = short(TickProtocol::Utrp);
        let plain = run_soak(&config).unwrap();
        let obs = Obs::new();
        let observed = run_soak_observed(&config, &obs).unwrap();
        assert_eq!(plain.log, observed.log);
        assert_eq!(plain.digest(), observed.digest());
        assert_eq!(plain.counts, observed.counts);
        assert!(plain.flight_dump.is_none(), "disabled obs never dumps");

        assert_eq!(obs.counter(obs.m.soak_ticks), config.ticks);
        assert_eq!(obs.counter(obs.m.soak_violations), 0);
        assert_eq!(obs.counter(obs.m.audits_total), observed.counts.audits);
        assert_eq!(obs.counter(obs.m.resync_attempts), observed.counts.resyncs);
        assert!(obs.counter(obs.m.rounds_utrp) >= config.ticks);
        assert_eq!(
            obs.counter(obs.m.verify_intact),
            observed.counts.intact,
            "final-verdict intact ticks are verified intact exactly once"
        );
        // The scripted desync bursts tripped the first-wins dump latch.
        let dump = observed.flight_dump.expect("bursts latch a desync dump");
        assert_eq!(dump.reason, "desync");
        assert!(dump.jsonl.contains("\"type\":\"tick_completed\""));
    }

    #[test]
    fn invariant_violation_dumps_are_byte_identical_across_runs() {
        // A 1-tick deadline is only met when the theft tick and the
        // next both alarm (escalation needs 2 consecutive alarms); at
        // α=0.5 the frames are small enough that some theft in this
        // seeded run deterministically slips past and trips I1. TRP
        // keeps desync/quarantine triggers out of the way, so the
        // violation itself owns the first-wins dump latch.
        let config = SoakConfig {
            ticks: 100,
            alpha: 0.5,
            protocol: TickProtocol::Trp,
            burst_period: 0,
            theft_period: 10,
            detection_deadline: 1,
            ..SoakConfig::default()
        };
        let obs_a = Obs::new();
        let obs_b = Obs::new();
        let a = run_soak_observed(&config, &obs_a).unwrap();
        let b = run_soak_observed(&config, &obs_b).unwrap();
        assert!(!a.is_clean(), "deadline of 1 must violate I1");
        assert!(a.violations.iter().any(|v| v.starts_with("I1")));
        assert!(obs_a.counter(obs_a.m.soak_violations) >= 1);

        let dump_a = a.flight_dump.expect("violation latches the dump");
        let dump_b = b.flight_dump.expect("violation latches the dump");
        assert_eq!(dump_a.reason, "invariant_violation");
        assert_eq!(dump_a, dump_b, "postmortems must be byte-identical");
        assert!(dump_a.jsonl.contains("\"type\":\"invariant_violated\""));
        assert_eq!(obs_a.snapshot_json(), obs_b.snapshot_json());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let under_tolerance = SoakConfig {
            theft_size: 2,
            m: 2,
            ..SoakConfig::default()
        };
        assert!(run_soak(&under_tolerance).is_err());
        let zero_ticks = SoakConfig {
            ticks: 0,
            ..SoakConfig::default()
        };
        assert!(run_soak(&zero_ticks).is_err());
    }

    #[test]
    fn derived_default_policy_is_byte_identical_to_config_run() {
        let config = short(TickProtocol::Utrp);
        let legacy = run_soak(&config).unwrap();
        let policy = SoakDriver::derive_policy(&config);
        let declared = run_soak_policy(&config, &policy).unwrap();
        assert_eq!(legacy.log, declared.log);
        assert_eq!(legacy.digest(), declared.digest());
        assert_eq!(legacy.to_json(), declared.to_json());
    }

    #[test]
    fn non_default_policy_changes_the_run() {
        let config = short(TickProtocol::Utrp);
        let legacy = run_soak(&config).unwrap();
        let mut policy = SoakDriver::derive_policy(&config);
        policy.alarms_to_escalate = 4;
        let declared = run_soak_policy(&config, &policy).unwrap();
        assert_ne!(
            legacy.digest(),
            declared.digest(),
            "raising the escalation threshold must change the tick log"
        );
    }

    #[test]
    fn policy_protocol_overrides_config_protocol() {
        let config = short(TickProtocol::Utrp);
        let mut policy = SoakDriver::derive_policy(&config);
        policy.protocol = TickProtocol::Trp;
        let report = run_soak_policy(&config, &policy).unwrap();
        assert_eq!(
            report.counts.desync_bursts, 0,
            "TRP has no counters, so no bursts can be scripted"
        );
        assert!(report.to_json().contains("\"protocol\": \"trp\""));
    }

    #[test]
    fn degenerate_policy_is_rejected_by_the_soak_entry_point() {
        let config = short(TickProtocol::Utrp);
        let mut policy = SoakDriver::derive_policy(&config);
        policy.alarms_to_escalate = 0;
        let err = run_soak_policy(&config, &policy).unwrap_err();
        assert!(
            format!("{err}").contains("policy rejected"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn audit_budget_breach_marks_the_log_and_emits_policy_alert() {
        let config = short(TickProtocol::Utrp);
        let mut policy = SoakDriver::derive_policy(&config);
        policy.audit_budget = Some(0);
        policy.desyncs_to_quarantine = None; // budget 0 + quarantine is degenerate
        let obs = Obs::new();
        let report = run_soak_policy_observed(&config, &policy, &obs).unwrap();
        assert!(
            report.counts.audits > 0,
            "the scripted incidents must force audits"
        );
        assert!(
            report
                .log
                .iter()
                .any(|l| l.ends_with(" alert=audit-budget")),
            "a zero budget must flag every auditing tick: {:?}",
            report.log
        );
        // The first-wins dump latches at the first desync, before any
        // audit; the breach events land in the ring's retained window.
        assert!(
            obs.flight_jsonl().contains("\"type\":\"policy_alert\""),
            "breach events must reach the flight recorder"
        );
    }

    #[test]
    fn max_audits_in_window_slides_correctly() {
        let mut report = run_soak(&SoakConfig {
            ticks: 10,
            theft_period: 0,
            burst_period: 0,
            ..SoakConfig::default()
        })
        .unwrap();
        report.audit_ticks = vec![1, 2, 3, 200, 201, 500];
        assert_eq!(report.max_audits_in_window(100), 3);
        assert_eq!(report.max_audits_in_window(2), 2);
        report.audit_ticks.clear();
        assert_eq!(report.max_audits_in_window(100), 0);
    }
}
