//! Quickstart: monitor a set of tags with TRP in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A server registers 1 000 tags with policy "tolerate m = 10 missing,
//! detect worse with 95% confidence", then runs two monitoring rounds:
//! one over the intact set, one after a theft of m + 1 = 11 tags.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);

    // The physical warehouse and the server's registry.
    let mut warehouse = TagPopulation::with_sequential_ids(1_000);
    let mut server = MonitorServer::new(warehouse.ids(), 10, 0.95)?;
    println!("registered: {server}");

    // --- Round 1: the set is intact -----------------------------------
    let challenge = server.issue_trp_challenge(&mut rng)?;
    println!(
        "challenge: frame of {} (Eq. 2 minimal size for n=1000, m=10, alpha=0.95)",
        challenge.frame_size()
    );

    let mut reader = Reader::new(ReaderConfig::default());
    let bs = trp::run_reader(&mut reader, &challenge, &warehouse, &Channel::ideal())?;
    let report = server.verify_trp(challenge, &bs)?;
    println!("round 1 (intact):  {report}");
    assert!(report.verdict.is_intact());

    // --- Round 2: a thief removes 11 tags ------------------------------
    let stolen = warehouse.remove_random(11, &mut rng)?;
    println!("thief removes {} tags", stolen.len());

    let challenge = server.issue_trp_challenge(&mut rng)?;
    let bs = trp::run_reader(&mut reader, &challenge, &warehouse, &Channel::ideal())?;
    let report = server.verify_trp(challenge, &bs)?;
    println!("round 2 (theft):   {report}");

    // With the Eq. 2 frame this detects with probability > 0.95; the
    // fixed seed above is a detecting run.
    assert!(report.is_alarm());
    println!(
        "total air cost: {} slots across both rounds (collect-all would \
         have spent ~2.4 slots per tag per round — and transmitted every ID)",
        reader.slots_used()
    );
    Ok(())
}
