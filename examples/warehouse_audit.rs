//! Warehouse audit: the scenario from the paper's introduction.
//!
//! ```text
//! cargo run --release --example warehouse_audit
//! ```
//!
//! A retailer tags 5 000 items. Every audit cycle the reader scans the
//! floor; scratched or shelf-blocked tags (detuned, in this simulation)
//! come and go, which is exactly why the tolerance `m` exists. The
//! example contrasts three audit strategies on cost and outcome:
//!
//! 1. **collect-all** — inventory every ID (the classical baseline);
//! 2. **TRP** — one presence frame sized by Eq. 2;
//! 3. **cardinality estimation** — cheapest, but only counts tags.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch::protocols::collect_all::{collect_all, CollectAllConfig};
use tagwatch::protocols::estimate::{estimate_cardinality, EstimateConfig};

const N: usize = 5_000;
const TOLERANCE: u64 = 25;
const ALPHA: f64 = 0.95;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let timing = TimingModel::gen2();

    let mut floor = TagPopulation::with_sequential_ids(N);
    let mut server = MonitorServer::new(floor.ids(), TOLERANCE, ALPHA)?;

    // A handful of tags are unreadable this week (shelf blocking).
    let blocked = floor.detune_random(4, &mut rng)?;
    println!(
        "warehouse: {N} items, {} unreadable (blocked), tolerance m = {TOLERANCE}",
        blocked.len()
    );
    println!();

    // --- Strategy 1: collect-all ---------------------------------------
    let mut reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let mut inventory_floor = floor.clone();
    let run = collect_all(
        &mut reader,
        &mut inventory_floor,
        &Channel::ideal(),
        &CollectAllConfig::paper(N as u64, TOLERANCE),
        &mut rng,
    )?;
    println!(
        "collect-all: {} IDs in {} slots over {} rounds ({:.1} s of air time)",
        run.collected.len(),
        run.total_slots,
        run.rounds,
        run.duration.as_secs_f64()
    );

    // --- Strategy 2: TRP ------------------------------------------------
    let challenge = server.issue_trp_challenge(&mut rng)?;
    let trp_slots = challenge.frame_size().get();
    let mut trp_reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let bs = trp::run_reader(&mut trp_reader, &challenge, &floor, &Channel::ideal())?;
    let report = server.verify_trp(challenge, &bs)?;
    println!(
        "TRP:         1 frame of {trp_slots} slots ({:.1} s of air time) → {report}",
        trp_reader.clock().as_secs_f64()
    );
    println!(
        "             ({} blocked tags ≤ m = {TOLERANCE}: a blocked tag only shows \
         if no other tag shares its slot, and the m-tolerant frame is dense — \
         the guarantee is that > m missing is caught with ≥ {ALPHA} probability)",
        blocked.len()
    );

    // --- Strategy 3: estimation ----------------------------------------
    let mut est_reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let estimate = estimate_cardinality(
        &mut est_reader,
        &floor,
        &Channel::ideal(),
        &EstimateConfig::for_expected(N as u64)?,
        &mut rng,
    )?;
    println!(
        "estimation:  n̂ = {:.0} ± {:.0} in {} slots (counts only, no identities)",
        estimate.estimate,
        estimate.std_dev(),
        estimate.total_slots
    );
    println!();

    // --- Now an actual theft --------------------------------------------
    println!("** overnight, thieves remove {} items **", TOLERANCE + 1);
    floor.remove_random((TOLERANCE + 1) as usize, &mut rng)?;

    let challenge = server.issue_trp_challenge(&mut rng)?;
    let bs = trp::run_reader(&mut trp_reader, &challenge, &floor, &Channel::ideal())?;
    let report = server.verify_trp(challenge, &bs)?;
    println!("morning TRP audit: {report}");
    assert!(report.is_alarm(), "theft beyond tolerance must alarm");

    println!(
        "\nserver history: {} checks, {} alarms",
        server.history().len(),
        server.alarms().len()
    );
    Ok(())
}
