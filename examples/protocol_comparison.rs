//! Protocol shoot-out: every inventory/monitoring strategy in the
//! workspace on one population, one table.
//!
//! ```text
//! cargo run --release --example protocol_comparison [n]
//! ```
//!
//! Compares, for a population of `n` tags (default 2 000):
//!
//! * collect-all DFSA (Lee-optimal frames) — full identification;
//! * query-tree — deterministic full identification;
//! * cardinality estimation — counting only;
//! * TRP — missing-tag monitoring, `m = 10`;
//! * UTRP — the same, hardened against dishonest readers.
//!
//! Slot counts and (Gen2-model) air time both matter: collect-all's
//! slots carry 96-bit IDs while TRP's carry 10-bit bursts, which is the
//! paper's point that Fig. 4 understates collect-all's real cost.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::analytics::Table;
use tagwatch::prelude::*;
use tagwatch::protocols::collect_all::{collect_all, CollectAllConfig};
use tagwatch::protocols::estimate::{estimate_cardinality, EstimateConfig};
use tagwatch::protocols::query_tree::query_tree_inventory;
use tagwatch::protocols::tree_slotted::{tree_slotted_inventory, TsaConfig};

const M: u64 = 10;
const ALPHA: f64 = 0.95;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    let mut rng = StdRng::seed_from_u64(99);
    let timing = TimingModel::gen2();
    let stock = TagPopulation::with_sequential_ids(n);
    let params = MonitorParams::new(n as u64, M, ALPHA)?;

    let mut table = Table::new([
        "strategy",
        "slots",
        "air time (s)",
        "IDs on air?",
        "what it answers",
    ]);

    // collect-all
    let mut reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let mut floor = stock.clone();
    let run = collect_all(
        &mut reader,
        &mut floor,
        &Channel::ideal(),
        &CollectAllConfig::paper(n as u64, M),
        &mut rng,
    )?;
    table.push_row([
        "collect-all (DFSA)".to_owned(),
        run.total_slots.to_string(),
        format!("{:.2}", run.duration.as_secs_f64()),
        "yes (96-bit)".to_owned(),
        "which tags are present".to_owned(),
    ]);

    // query tree
    let qt = query_tree_inventory(&stock, &timing);
    table.push_row([
        "query tree".to_owned(),
        qt.total_queries.to_string(),
        format!("{:.2}", qt.duration.as_secs_f64()),
        "yes (96-bit)".to_owned(),
        "which tags are present".to_owned(),
    ]);

    // tree slotted ALOHA
    let tsa = tree_slotted_inventory(
        &stock,
        &TsaConfig::for_expected(n as u64)?,
        &timing,
        &mut rng,
    );
    table.push_row([
        "tree slotted ALOHA".to_owned(),
        tsa.total_slots.to_string(),
        format!("{:.2}", tsa.duration.as_secs_f64()),
        "yes (96-bit)".to_owned(),
        "which tags are present".to_owned(),
    ]);

    // estimation
    let mut est_reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let est = estimate_cardinality(
        &mut est_reader,
        &stock,
        &Channel::ideal(),
        &EstimateConfig::for_expected(n as u64)?,
        &mut rng,
    )?;
    table.push_row([
        "cardinality estimate".to_owned(),
        est.total_slots.to_string(),
        format!("{:.2}", est_reader.clock().as_secs_f64()),
        "no".to_owned(),
        format!("how many (n̂ = {:.0})", est.estimate),
    ]);

    // TRP
    let f_trp = trp_frame_size(&params)?;
    let mut trp_reader = Reader::new(ReaderConfig {
        timing,
        ..ReaderConfig::default()
    });
    let challenge = TrpChallenge::generate(f_trp, &mut rng);
    let _bs = trp::run_reader(&mut trp_reader, &challenge, &stock, &Channel::ideal())?;
    table.push_row([
        format!("TRP (m = {M})"),
        f_trp.get().to_string(),
        format!("{:.2}", trp_reader.clock().as_secs_f64()),
        "no".to_owned(),
        format!("are > {M} tags missing? (conf {ALPHA})"),
    ]);

    // UTRP
    let f_utrp = utrp_frame_size(&params, UtrpSizing::default())?;
    let utrp_challenge = UtrpChallenge::generate(f_utrp, &timing, &mut rng);
    let mut utrp_floor = stock.clone();
    let response = utrp::run_honest_reader(&mut utrp_floor, &utrp_challenge, &timing)?;
    table.push_row([
        format!("UTRP (m = {M}, c = 20)"),
        f_utrp.get().to_string(),
        format!("{:.2}", response.elapsed.as_secs_f64()),
        "no".to_owned(),
        "same, vs a dishonest reader".to_owned(),
    ]);

    println!("population: {n} tags, tolerance m = {M}, alpha = {ALPHA}");
    println!();
    print!("{}", table.to_text());
    println!();
    println!(
        "note: identification protocols answer a stronger question and\n\
         cannot beat n slots; monitoring needs only enough slots to make\n\
         m + 1 = {} absences statistically visible.",
        M + 1
    );
    Ok(())
}
