//! Sizing explorer: interrogate the paper's analysis directly.
//!
//! ```text
//! cargo run --release --example sizing_explorer [n] [m] [alpha] [c]
//! ```
//!
//! For the given parameters (defaults: n = 1000, m = 10, α = 0.95,
//! c = 20), prints:
//!
//! * the Eq. 2 TRP frame and the Eq. 3 UTRP frame;
//! * the detection-probability curve `g(n, m+1, f)` around the chosen
//!   frame, showing how sharply confidence rises with slots;
//! * the marginal cost of tolerance: frames for m' = 0 … 2m;
//! * the marginal cost of collusion resistance: UTRP frames vs budget c.

use tagwatch::analytics::{sparkline, Table};
use tagwatch::core::math::detection::{detection_probability, EmptySlotModel};
use tagwatch::core::math::utrp::{sync_horizon, utrp_detection_probability};
use tagwatch::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000);
    let m: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let alpha: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.95);
    let c: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);

    let params = MonitorParams::new(n, m, alpha)?;
    let f_trp = trp_frame_size(&params)?;
    let sizing = UtrpSizing {
        sync_budget: c,
        safety_pad: 8,
    };
    let f_utrp = utrp_frame_size(&params, sizing)?;

    println!("parameters: {params}, colluder budget c = {c}");
    println!("Eq. 2 TRP frame:  {f_trp}");
    println!(
        "Eq. 3 UTRP frame: {f_utrp} (includes +{} safety pad; sync horizon c' = {:.1} slots)",
        sizing.safety_pad,
        sync_horizon(n, m, f_utrp.get(), c)
    );
    println!();

    // Detection curve around the TRP frame.
    println!("g(n, m+1, f) around the chosen frame:");
    let mut curve = Table::new(["f", "g (detection prob)", "meets alpha?"]);
    let mut gs = Vec::new();
    let f0 = f_trp.get();
    for factor in [0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0] {
        let f = ((f0 as f64 * factor) as u64).max(1);
        let g = detection_probability(n, m + 1, f, EmptySlotModel::Poisson);
        gs.push(g);
        curve.push_row([
            format!("{f} ({factor:.2}x)"),
            format!("{g:.4}"),
            if g > alpha { "yes" } else { "no" }.to_owned(),
        ]);
    }
    print!("{}", curve.to_text());
    println!("shape: {}", sparkline(&gs));
    println!();

    // Tolerance sweep.
    println!("cost of tolerance (TRP frame vs m'):");
    let mut tol = Table::new(["m'", "frame", "slots per tolerated tag saved"]);
    let mut prev: Option<u64> = None;
    for m_prime in (0..=2 * m.max(1)).step_by((m.max(1) as usize / 2).max(1)) {
        if m_prime >= n {
            break;
        }
        let p = MonitorParams::new(n, m_prime, alpha)?;
        let f = trp_frame_size(&p)?.get();
        let delta = prev.map_or("-".to_owned(), |pf| format!("{}", pf as i64 - f as i64));
        tol.push_row([m_prime.to_string(), f.to_string(), delta]);
        prev = Some(f);
    }
    print!("{}", tol.to_text());
    println!();

    // Collusion budget sweep.
    println!("cost of collusion resistance (UTRP frame vs c):");
    let mut bud = Table::new(["c", "frame", "detection at that frame"]);
    for c_prime in [0u64, 5, 10, 20, 40, 80] {
        let s = UtrpSizing {
            sync_budget: c_prime,
            safety_pad: 8,
        };
        let f = utrp_frame_size(&params, s)?.get();
        let d = utrp_detection_probability(n, m, f, c_prime, EmptySlotModel::Poisson);
        bud.push_row([c_prime.to_string(), f.to_string(), format!("{d:.4}")]);
    }
    print!("{}", bud.to_text());
    Ok(())
}
