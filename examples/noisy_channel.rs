//! Channel robustness: what physical-layer noise does to monitoring.
//!
//! ```text
//! cargo run --release --example noisy_channel
//! ```
//!
//! The analysis assumes an ideal channel; real docks have fades,
//! blockers and interference. This example measures, across reply-loss
//! rates, the two error directions on an **intact** set and on a
//! **robbed** set:
//!
//! * false alarms (intact set flagged) — rises with loss, because a
//!   lost reply is indistinguishable from a missing tag;
//! * missed detections (theft of `m + 1` not flagged) — can only fall
//!   with loss, because noise only ever *adds* mismatch evidence.
//!
//! The asymmetry is the fail-safe property the server relies on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::analytics::{percentile, Histogram, Table};
use tagwatch::core::trp;
use tagwatch::prelude::*;

const N: usize = 400;
const M: u64 = 5;
const TRIALS: u64 = 150;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = TagPopulation::with_sequential_ids(N).ids();
    let params = MonitorParams::new(N as u64, M, 0.95)?;
    let f = trp_frame_size(&params)?;
    println!("n = {N}, m = {M}, frame = {f}; {TRIALS} trials per cell\n");

    let mut table = Table::new(["reply loss", "false alarms (intact)", "missed (m+1 stolen)"]);

    for loss in [0.0, 0.005, 0.01, 0.02, 0.05, 0.10] {
        let channel = Channel::with_config(ChannelConfig {
            reply_loss_prob: loss,
            ..ChannelConfig::default()
        })?;

        let mut false_alarms = 0u64;
        let mut missed = 0u64;
        for seed in 0..TRIALS {
            // Intact set.
            let mut rng = StdRng::seed_from_u64(seed);
            let floor = TagPopulation::with_sequential_ids(N);
            let ch = TrpChallenge::generate(f, &mut rng);
            let mut reader = Reader::new(ReaderConfig {
                seed,
                ..ReaderConfig::default()
            });
            let bs = trp::run_reader(&mut reader, &ch, &floor, &channel)?;
            if trp::verify(&registry, ch, &bs)?.is_alarm() {
                false_alarms += 1;
            }

            // Robbed set.
            let mut rng = StdRng::seed_from_u64(10_000 + seed);
            let mut floor = TagPopulation::with_sequential_ids(N);
            floor.remove_random((M + 1) as usize, &mut rng)?;
            let ch = TrpChallenge::generate(f, &mut rng);
            let bs = trp::run_reader(&mut reader, &ch, &floor, &channel)?;
            if !trp::verify(&registry, ch, &bs)?.is_alarm() {
                missed += 1;
            }
        }
        table.push_row([
            format!("{:.1}%", loss * 100.0),
            format!("{:.1}%", 100.0 * false_alarms as f64 / TRIALS as f64),
            format!("{:.1}%", 100.0 * missed as f64 / TRIALS as f64),
        ]);
    }
    print!("{}", table.to_text());

    // Distribution of mismatch evidence under moderate noise: how many
    // bits disagree when the alarm fires?
    println!("\nmismatch-count distribution at 2% loss, intact set:");
    let channel = Channel::with_config(ChannelConfig {
        reply_loss_prob: 0.02,
        ..ChannelConfig::default()
    })?;
    let mut hist = Histogram::new(0.0, 20.0, 10);
    let mut counts = Vec::new();
    for seed in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(seed);
        let floor = TagPopulation::with_sequential_ids(N);
        let ch = TrpChallenge::generate(f, &mut rng);
        let mut reader = Reader::new(ReaderConfig {
            seed,
            ..ReaderConfig::default()
        });
        let bs = trp::run_reader(&mut reader, &ch, &floor, &channel)?;
        let report = trp::verify(&registry, ch, &bs)?;
        hist.record(report.mismatched_slots as f64);
        counts.push(report.mismatched_slots as f64);
    }
    print!("{hist}");
    println!(
        "median {}  p90 {}",
        percentile(&counts, 0.5).unwrap(),
        percentile(&counts, 0.9).unwrap()
    );
    println!(
        "\ntakeaway: a deployment with loss sets the tolerance m above the\n\
         noise floor (here ~{} bits at 2% loss) — exactly the scratched-tag\n\
         argument the paper's introduction makes for m > 0.",
        percentile(&counts, 0.9).unwrap()
    );
    Ok(())
}
