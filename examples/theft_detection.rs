//! Theft with a dishonest reader: why UTRP exists.
//!
//! ```text
//! cargo run --release --example theft_detection
//! ```
//!
//! 45% of retail theft is internal (paper §1) — the person holding the
//! reader may be the thief. This example walks the paper's escalation:
//!
//! 1. a **replay** of an old bitstring (fails: fresh nonces);
//! 2. the **split-set collusion** of Alg. 4 (defeats TRP completely);
//! 3. the same colluders against **UTRP** with a sync budget `c = 20`
//!    (caught with probability > α thanks to Eq. 3 frame sizing).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::attack::colluder::{collude_utrp, ColluderConfig};
use tagwatch::attack::replay::ReplayAttacker;
use tagwatch::attack::split_set::split_set_attack;
use tagwatch::core::trp::observed_bitstring;
use tagwatch::core::utrp::run_honest_reader;
use tagwatch::prelude::*;

const N: usize = 800;
const M: u64 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1337);
    let stock = TagPopulation::with_sequential_ids(N);
    let mut server = MonitorServer::new(stock.ids(), M, 0.95)?;
    println!("{server}");
    println!();

    // === Act 1: the replay attack ======================================
    println!("-- act 1: replay --");
    let mut attacker = ReplayAttacker::new();
    // While the set is intact, the insider records an honest scan. If
    // the server were lazy enough to reuse (f, r), this tape would pass.
    let challenge = server.issue_trp_challenge(&mut rng)?;
    attacker.record(&challenge, observed_bitstring(&stock.ids(), &challenge));
    let tape = attacker.respond(&challenge);
    let report = server.verify_trp(challenge, &tape)?;
    println!("  tape vs the challenge it was recorded under:    {report}");

    // The theft happens; the server issues a FRESH challenge.
    let fresh = server.issue_trp_challenge(&mut rng)?;
    let replayed = attacker.respond(&fresh);
    let report = server.verify_trp(fresh, &replayed)?;
    println!("  replayed tape against a fresh nonce:            {report}");
    assert!(report.is_alarm(), "replay must fail against fresh nonces");
    println!();

    // === Act 2: split-set collusion kills TRP ==========================
    println!("-- act 2: split-set collusion vs TRP (Alg. 4) --");
    let mut s1 = stock.clone();
    let s2 = {
        let mut r = StdRng::seed_from_u64(7);
        s1.split_random((M + 1) as usize, &mut r)?
    };
    println!(
        "  insider hands {} tags to an accomplice with a second reader",
        s2.len()
    );
    let challenge = server.issue_trp_challenge(&mut rng)?;
    let forged = split_set_attack(&s1.ids(), &s2.ids(), &challenge)?;
    let report = server.verify_trp(challenge, &forged)?;
    println!("  OR-merged bitstring from two sites:             {report}");
    assert!(
        report.verdict.is_intact(),
        "TRP cannot distinguish the colluders from an intact set"
    );
    println!("  => TRP is broken against colluding readers");
    println!();

    // === Act 3: the same colluders vs UTRP =============================
    println!("-- act 3: the same colluders vs UTRP (c = 20) --");
    let utrp_challenge = server.issue_utrp_challenge(&mut rng)?;
    println!(
        "  challenge: {}, {} committed nonces, deadline {}",
        utrp_challenge.frame_size(),
        utrp_challenge.nonces().len(),
        utrp_challenge.timer().deadline()
    );
    let mut a1 = s1.clone();
    let mut a2 = s2.clone();
    let outcome = collude_utrp(
        &mut a1,
        &mut a2,
        &utrp_challenge,
        &ColluderConfig::default(),
        &server.config().timing.clone(),
    )?;
    println!(
        "  colluders spent {} syncs, desynchronized at slot {:?}",
        outcome.syncs_used, outcome.desync_slot
    );
    let report = server.verify_utrp(utrp_challenge, &outcome.response)?;
    println!("  server verdict:                                 {report}");
    assert!(
        report.is_alarm(),
        "this seed is a detecting run (probability > 0.95 in general)"
    );
    println!();

    // === Epilogue: honest reader still passes UTRP =====================
    println!("-- epilogue: honest reader, intact set, UTRP --");
    server.resync_counters(stock.counters())?;
    let mut honest_floor = stock.clone();
    let challenge = server.issue_utrp_challenge(&mut rng)?;
    let response = run_honest_reader(
        &mut honest_floor,
        &challenge,
        &server.config().timing.clone(),
    )?;
    let report = server.verify_utrp(challenge, &response)?;
    println!("  {report}");
    assert!(report.verdict.is_intact());
    Ok(())
}
