//! Grouped audit: different-sized tag groups, one sweep.
//!
//! ```text
//! cargo run --release --example grouped_audit
//! ```
//!
//! The paper's contribution #4 is flexibility across group sizes —
//! unlike generalized yoking proofs, whose on-chip timers pin the group
//! size. Here a receiving dock monitors three deliveries at once, each
//! with its own policy, using realistic SGTIN-96 identities:
//!
//! * a 1 200-item pallet of soda (loose policy — shrinkage is expected);
//! * a 150-item case of razors (moderate policy);
//! * an 8-item box of graphics cards (strict policy: any loss alarms).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tagwatch::core::groups::GroupedMonitor;
use tagwatch::core::trp::observed_bitstring;
use tagwatch::prelude::*;
use tagwatch::sim::sgtin_batch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);

    // SGTIN-96 identities: same company, three item classes.
    let soda = sgtin_batch(0x0BEE5, 1_001, 0, 1_200)?;
    let razors = sgtin_batch(0x0BEE5, 2_002, 0, 150)?;
    let gpus = sgtin_batch(0x0BEE5, 3_003, 0, 8)?;

    let mut monitor = GroupedMonitor::new();
    monitor.add_group("pallet:soda", soda.iter().copied(), 20, 0.95)?;
    monitor.add_group("case:razors", razors.iter().copied(), 2, 0.95)?;
    monitor.add_group("box:gpus", gpus.iter().copied(), 0, 0.99)?;
    println!("{monitor}");

    let audit = monitor.issue_audit(&mut rng)?;
    for name in audit.groups() {
        let ch = audit.challenge(name).unwrap();
        println!("  {name:<13} frame {}", ch.frame_size());
    }
    println!("  total audit cost: {} slots\n", audit.total_slots());

    // The physical floors. Razors being razors, 5 of them walk away —
    // beyond that group's tolerance of 2. GPUs and soda are intact.
    let mut razor_floor = TagPopulation::from_ids(razors.clone())?;
    razor_floor.remove_random(5, &mut rng)?;

    let mut responses = BTreeMap::new();
    responses.insert(
        "pallet:soda".to_owned(),
        observed_bitstring(&soda, audit.challenge("pallet:soda").unwrap()),
    );
    responses.insert(
        "case:razors".to_owned(),
        observed_bitstring(&razor_floor.ids(), audit.challenge("case:razors").unwrap()),
    );
    responses.insert(
        "box:gpus".to_owned(),
        observed_bitstring(&gpus, audit.challenge("box:gpus").unwrap()),
    );

    let report = monitor.verify_audit(audit, &responses)?;
    println!("audit results:");
    for (name, r) in &report.per_group {
        println!("  {name:<13} {r}");
    }
    println!("\nalarmed groups: {:?}", report.alarmed_groups());
    assert_eq!(report.alarmed_groups(), vec!["case:razors"]);
    println!("(the theft localized to the right group — soda and GPUs stayed quiet)");
    Ok(())
}
