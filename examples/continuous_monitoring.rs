//! Continuous monitoring with escalation, identification, and restarts.
//!
//! ```text
//! cargo run --release --example continuous_monitoring
//! ```
//!
//! The operational loop around the paper's protocols:
//!
//! 1. routine cheap checks on a schedule (a `MonitoringSession`);
//! 2. transient blocking rides out below the escalation threshold;
//! 3. a real theft triggers two consecutive alarms → the session
//!    escalates to iterative *identification* and names the missing
//!    tags — still without collecting a single ID over the air;
//! 4. the server state (including UTRP counters) survives a restart
//!    via the text snapshot format.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::analytics::{MonitoringSession, SessionEvent};
use tagwatch::core::registry::RegistrySnapshot;
use tagwatch::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(404);

    let mut floor = TagPopulation::with_sequential_ids(600);
    let server = MonitorServer::new(floor.ids(), 5, 0.95)?;
    // Builder with the documented defaults (TRP ticks, escalate after 2
    // consecutive alarms).
    let mut session = MonitoringSession::builder(server).build();

    // --- Week 1: routine, with one transiently blocked tag ------------
    println!("week 1: routine monitoring");
    let ids = floor.ids();
    for day in 1..=5 {
        // Day 3: a pallet blocks one tag; day 4: it is moved away.
        floor.get_mut(ids[17]).unwrap().set_detuned(day == 3);
        let event = session.tick(&mut floor, &mut rng)?;
        if let SessionEvent::Checked(report) = event {
            println!("  day {day}: {report}");
        }
    }
    assert_eq!(session.consecutive_alarms(), 0);

    // --- Week 2: a real theft ------------------------------------------
    println!("\nweek 2: eight items stolen overnight");
    let stolen = floor.remove_random(8, &mut rng)?;
    let mut stolen_ids: Vec<TagId> = stolen.iter().map(|t| t.id()).collect();
    stolen_ids.sort_unstable();

    for day in 6..=10 {
        let event = session.tick(&mut floor, &mut rng)?;
        match event {
            SessionEvent::Checked(report) => println!("  day {day}: {report}"),
            SessionEvent::Escalated {
                missing,
                slots_used,
                ..
            } => {
                println!(
                    "  day {day}: ESCALATED — identification named {} missing tags in {} slots",
                    missing.len(),
                    slots_used
                );
                assert_eq!(missing, &stolen_ids);
                println!("           exact stolen set recovered: {missing:?}");
                break;
            }
            SessionEvent::Resynced { attempt, .. } => {
                println!("  day {day}: counter desync diagnosed, resynced (attempt {attempt})");
            }
            SessionEvent::Quarantined { tags } => {
                println!("  day {day}: quarantined for inspection: {tags:?}");
            }
        }
    }

    // --- Restart: persistence round trip --------------------------------
    println!("\nserver restart: snapshot → text → restore");
    let text = session.server().snapshot().to_text();
    println!(
        "  snapshot is {} lines of plain text (policy + {} counters)",
        text.lines().count(),
        session.server().len()
    );
    let restored = MonitorServer::from_snapshot(
        RegistrySnapshot::from_text(&text)?,
        *session.server().config(),
    )?;
    assert_eq!(restored.params(), session.server().params());
    println!("  restored: {restored}");
    Ok(())
}
