//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API that the
//! tagwatch workspace actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator,
//! * [`seq::SliceRandom`] — `choose` / `choose_multiple` / `shuffle`.
//!
//! Everything is deterministic given a seed; there is no OS entropy
//! source on purpose (the workspace's reproducibility contract requires
//! explicit seeding everywhere). Streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine: nothing in the workspace
//! depends on the exact stream, only on seed-determinism and on
//! statistical uniformity.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// splitmix64 (the construction recommended for exactly this).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that a generator can produce via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` by rejection sampling (no modulo
/// bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return u128::from_rng(rng) & (span - 1);
    }
    // Largest v with v < 2^128 - (2^128 % span) is accepted.
    let rem = (u128::MAX % span + 1) % span; // 2^128 mod span
    let zone = u128::MAX - rem;
    loop {
        let v = u128::from_rng(rng);
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t as Standard>::from_rng(rng);
                }
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing generator methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (integers uniform over the full type,
    /// floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} outside [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// a small, fast, well-mixed PRNG (Blackman & Vigna). Not the same
    /// stream as upstream `rand`'s ChaCha12 `StdRng`, but the workspace
    /// only relies on seed-determinism, which this provides.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256** state words, for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this makes the generator
        /// resumable: a generator rebuilt from a captured state produces
        /// exactly the stream the original would have produced next.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`].
        ///
        /// An all-zero state (never produced by a live generator, but
        /// possible from a corrupted checkpoint) is re-expanded through
        /// splitmix64 exactly as in [`SeedableRng::from_seed`], so the
        /// result is always a valid generator.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                let mut state = 0x853c_49e6_748f_ea9bu64;
                for slot in &mut s {
                    *slot = splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state must not be all-zero; re-expand via
            // splitmix64 in that (adversarially seeded) case.
            if s == [0; 4] {
                let mut state = 0x853c_49e6_748f_ea9bu64;
                for slot in &mut s {
                    *slot = splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table: O(len) setup,
            // O(amount) draws.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
                picked.push(&self[indices[i]]);
            }
            picked.into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    use super::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn from_state_rejects_all_zero_state() {
        let mut rng = StdRng::from_state([0; 4]);
        // Must still be a working generator, identical to the
        // from_seed all-zero fallback (and so never stuck at zero).
        assert_ne!(rng.next_u64(), rng.next_u64());
        assert_eq!(
            StdRng::from_state([0; 4]).state(),
            StdRng::from_seed([0; 32]).state()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let p = f64::from(c) / f64::from(trials);
            assert!((p - 0.1).abs() < 0.01, "bucket probability {p}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<u64> = (0..50).collect();
        let picked: Vec<u64> = items.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates in sample");
        // Over-asking returns everything.
        assert_eq!(items.choose_multiple(&mut rng, 99).count(), 50);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut items: Vec<u64> = (0..100).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn generic_rng_bound_accepts_unsized() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
    }

    #[test]
    fn gen_produces_each_supported_type() {
        let mut rng = StdRng::seed_from_u64(21);
        let _: u64 = rng.gen();
        let _: u128 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
