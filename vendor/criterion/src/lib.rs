//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides the small API subset the workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! plain wall-clock measurement loop. No statistics, plots, or HTML
//! reports: each benchmark prints its median per-iteration time. Good
//! enough to keep `cargo bench` compiling and useful for coarse
//! comparisons; not a replacement for real criterion rigor.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Anything usable as a benchmark label (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoLabel {
    /// Converts to the display label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Passed to benchmark closures; runs the measured loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream-compatible knob; here it scales the iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoLabel, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; we need nothing).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the iteration count until a sample takes ≥ ~5 ms,
    // then take `sample_size`-scaled samples and report the median.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let samples = (sample_size / 10).clamp(3, 10);
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {label:<48} {:>12}/iter ({iters} iters/sample)",
        human(median)
    );
}

fn human(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_label(), 100, &mut f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(500).to_string(), "500");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
