//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the subset of proptest the workspace's property
//! tests use: the [`proptest!`] macro with `arg in strategy` bindings,
//! `prop_assert!`-family macros, `any::<T>()`, integer/float range
//! strategies, and `prop::collection::{vec, hash_set}`.
//!
//! Semantics are simplified but honest: every test runs its body over
//! `ProptestConfig::cases` deterministically seeded random inputs and
//! panics with the offending inputs on the first failure. There is no
//! shrinking — failures report the raw counterexample instead.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;

/// Test-runner configuration (subset: case count only).
pub mod test_runner {
    /// How a [`crate::proptest!`] block runs its cases.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the heavier
            // protocol-level properties fast while still sampling the
            // space broadly. Override per-block with
            // `#![proptest_config(ProptestConfig::with_cases(n))]`.
            ProptestConfig { cases: 64 }
        }
    }
}

/// How a test case's input is produced.
pub trait Strategy {
    /// The produced value type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Values drawable by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        // Finite, sign-symmetric, broad magnitude spread.
        let mag: f64 = rng.gen::<f64>() * 1e9;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Draws arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRngAlias, Strategy};
        use std::collections::HashSet;
        use std::fmt::Debug;
        use std::hash::Hash;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from
        /// `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, 0..n)`: vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRngAlias) -> Self::Value {
                use rand::Rng;
                let n = if self.len.is_empty() {
                    self.len.start
                } else {
                    rng.gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K::Value, V::Value>` with a size
        /// drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        /// `btree_map(key, value, 0..n)`: maps with distinct keys.
        pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            BTreeMapStrategy { key, value, size }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord + Debug,
            V: Strategy,
        {
            type Value = std::collections::BTreeMap<K::Value, V::Value>;

            fn sample(&self, rng: &mut StdRngAlias) -> Self::Value {
                use rand::Rng;
                let target = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                let mut out = std::collections::BTreeMap::new();
                // Bounded attempts, as for hash_set.
                let mut budget = target * 10 + 100;
                while out.len() < target && budget > 0 {
                    out.insert(self.key.sample(rng), self.value.sample(rng));
                    budget -= 1;
                }
                out
            }
        }

        /// Strategy for `HashSet<S::Value>` with a size drawn from
        /// `size`.
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `hash_set(element, 0..n)`: sets of distinct `element`
        /// values.
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash + Debug,
        {
            type Value = HashSet<S::Value>;

            fn sample(&self, rng: &mut StdRngAlias) -> Self::Value {
                use rand::Rng;
                let target = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                let mut out = HashSet::with_capacity(target);
                // Bounded attempts: duplicate-dense element strategies
                // settle for a smaller set instead of spinning.
                let mut budget = target * 10 + 100;
                while out.len() < target && budget > 0 {
                    out.insert(self.element.sample(rng));
                    budget -= 1;
                }
                out
            }
        }
    }
}

// Internal alias so nested modules can name the RNG without a public
// dependency on the vendored rand's module layout.
#[doc(hidden)]
pub type StdRngAlias = StdRng;

#[doc(hidden)]
pub mod runner {
    use rand::SeedableRng;

    /// Deterministic per-test RNG: fixed root, offset by a hash of the
    /// test name so sibling tests see different streams.
    #[must_use]
    pub fn rng_for(test_name: &str, case: u32) -> super::StdRngAlias {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        super::StdRngAlias::seed_from_u64(h ^ (u64::from(case) << 32) ^ 0x7470_6573_7421)
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with the inputs printed) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            ));
        }
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::runner::rng_for(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(__msg) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}\ninputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in 1usize..=8) {
            prop_assert!(x < 100);
            prop_assert!((1..=8).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_length(v in prop::collection::vec(any::<bool>(), 0..30)) {
            prop_assert!(v.len() < 30);
        }

        #[test]
        fn hash_set_strategy_is_distinct(s in prop::collection::hash_set(any::<u64>(), 0..40)) {
            prop_assert!(s.len() < 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_override_applies(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
